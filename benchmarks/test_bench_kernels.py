"""Kernel-layer microbenchmarks (first slice of the ROADMAP perf ledger).

Times the hottest inner loops of the compiler and validator in isolation
and records them to ``BENCH_kernels.json`` at the repo root:

* **SA Metropolis step** (:func:`repro.core.placement.annealing.anneal` via
  :func:`~repro.core.placement.initial.sa_placement` with the delta-cost
  protocol): microseconds per annealing iteration on a representative
  placement workload, setup amortized over the iterations actually run.
* **Gate-candidate scoring** (:func:`repro.core.placement.gate_placement.place_gates`
  fast path): microseconds per (gate, candidate-site) cost-matrix cell for
  the batched distance computation behind the per-stage matching.
* **ASAP staging scheduler** (:func:`repro.circuits.scheduling.schedule_stages`
  fast path): microseconds per gate on resynthesized circuits.
* **ZAIR columns build** (:func:`repro.zair.columns.build_columns`): the
  flatten-to-numpy pass every fast validation starts with, in microseconds
  per instruction.
* **Trap-occupancy event sort**
  (:func:`repro.zair.validation._trap_occupancy_violated`): the global
  lexsort replay of the occupancy events, in microseconds per event.
* **Batched AOD pairwise check**
  (:func:`repro.zair.validation._aod_ordering_violated`): the vectorized
  non-crossing constraint evaluation, in microseconds per instruction.

The assertions are loose catastrophic-regression backstops (an order of
magnitude above typical numbers); the JSON ledger is the real artifact --
``benchmarks/bench_diff.py`` reports run-over-run drifts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import repro.api as api
from repro.arch.presets import reference_zoned_architecture
from repro.circuits.random import generate
from repro.circuits.scheduling import preprocess, schedule_stages
from repro.circuits.synthesis import resynthesize
from repro.core.config import ZACConfig
from repro.core.placement.initial import sa_placement
from repro.zair.columns import build_columns
from repro.zair.validation import _aod_ordering_violated, _trap_occupancy_violated

#: Catastrophic-regression backstops (roughly 10x typical 1-CPU numbers).
#: The SA floor was tightened 500 -> 60 when the vectorized placement engine
#: landed (price-table proposal costing; typical ~5-15 us/iteration).
MAX_SA_US_PER_ITERATION = 60.0
MAX_CANDIDATE_US_PER_CELL = 10.0
MAX_STAGING_US_PER_GATE = 100.0
MAX_COLUMNS_US_PER_INSTRUCTION = 100.0
MAX_OCCUPANCY_US_PER_EVENT = 10.0
MAX_AOD_US_PER_INSTRUCTION = 50.0

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

REPEATS = 5


def _bench_sa_metropolis(architecture) -> dict:
    """Best-of-N microseconds per Metropolis iteration, setup amortized."""
    circuit = generate("brickwork", seed=0, num_qubits=30, depth=20).circuit
    stage_pairs = [
        stage.pairs for stage in preprocess(circuit, cache=False).rydberg_stages
    ]
    config = ZACConfig(sa_iterations=2000)

    best_us_per_iteration = float("inf")
    iterations = 0
    for _ in range(REPEATS):
        captured: dict[str, object] = {}
        start = time.perf_counter()
        sa_placement(
            architecture,
            circuit.num_qubits,
            stage_pairs,
            config,
            on_result=lambda r: captured.__setitem__("r", r),
        )
        elapsed = time.perf_counter() - start
        result = captured["r"]
        us = elapsed * 1e6 / max(1, result.iterations)
        if us < best_us_per_iteration:
            best_us_per_iteration = us
            iterations = result.iterations
    return {
        "workload": "brickwork[num_qubits=30,depth=20]",
        "iterations_run": iterations,
        "us_per_iteration": round(best_us_per_iteration, 3),
        "max_us_per_iteration": MAX_SA_US_PER_ITERATION,
    }


def _bench_gate_candidate_scoring(architecture) -> dict:
    """Best-of-N microseconds per cost-matrix cell for batched gate scoring.

    One full ``place_gates`` matching on a stage-sized gate list over the
    reference architecture's free sites, normalised by the number of
    (gate, free-site) cells the batched scorer prices.
    """
    from repro.core.placement.gate_placement import place_gates
    from repro.core.placement.initial import trivial_placement

    circuit = generate("brickwork", seed=1, num_qubits=30, depth=8).circuit
    stage_pairs = [
        stage.pairs for stage in preprocess(circuit, cache=False).rydberg_stages
    ]
    gates = stage_pairs[0]
    next_gates = stage_pairs[1] if len(stage_pairs) > 1 else None
    placement = trivial_placement(architecture, circuit.num_qubits)
    positions = {
        q: architecture.trap_position(trap) for q, trap in placement.items()
    }
    num_cells = len(gates) * architecture.num_rydberg_sites

    best_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        sites, _ = place_gates(
            architecture, gates, positions, set(), next_gates, fast=True
        )
        best_s = min(best_s, time.perf_counter() - start)
    assert len(sites) == len(gates)
    return {
        "workload": "brickwork[num_qubits=30,depth=8] stage 0",
        "num_gates": len(gates),
        "num_cells": num_cells,
        "us_per_cell": round(best_s * 1e6 / max(1, num_cells), 4),
        "max_us_per_cell": MAX_CANDIDATE_US_PER_CELL,
    }


def _bench_staging_scheduler() -> dict:
    """Best-of-N microseconds per gate for the fast ASAP stage scheduler."""
    rows = []
    total_gates = 0
    total_best_s = 0.0
    for generator, num_qubits, depth in (
        ("brickwork", 30, 24),
        ("qaoa_erdos_renyi", 24, 8),
    ):
        circuit = generate(
            generator, seed=0, num_qubits=num_qubits, depth=depth
        ).circuit
        native = resynthesize(circuit)
        num_gates = len(native.gates)
        best_s = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            schedule_stages(native, fast=True)
            best_s = min(best_s, time.perf_counter() - start)
        total_gates += num_gates
        total_best_s += best_s
        rows.append(
            {
                "workload": f"{generator}[num_qubits={num_qubits},depth={depth}]",
                "num_gates": num_gates,
                "us_per_gate": round(best_s * 1e6 / num_gates, 3),
            }
        )
    return {
        "workloads": rows,
        "us_per_gate": round(total_best_s * 1e6 / total_gates, 3),
        "max_us_per_gate": MAX_STAGING_US_PER_GATE,
    }


def _validator_program(architecture):
    """A representative compiled program for the validator-side kernels."""
    circuit = generate("brickwork", seed=0, num_qubits=24, depth=12).circuit
    result = api.compile(
        circuit, backend="zac", arch=architecture, config=ZACConfig(sa_iterations=100)
    )
    return result.program


def _bench_columns_build(architecture, program) -> dict:
    """Best-of-N microseconds per instruction for the columns flatten."""
    num_instructions = len(program.instructions)
    best_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        build_columns(program, architecture)
        best_s = min(best_s, time.perf_counter() - start)
    return {
        "workload": "brickwork[num_qubits=24,depth=12] zac program",
        "num_instructions": num_instructions,
        "us_per_instruction": round(best_s * 1e6 / num_instructions, 3),
        "max_us_per_instruction": MAX_COLUMNS_US_PER_INSTRUCTION,
    }


def _bench_trap_occupancy(cols) -> dict:
    """Best-of-N microseconds per occupancy event for the lexsort replay."""
    num_events = int(cols.loc_role.size)
    best_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        violated = _trap_occupancy_violated(cols)
        best_s = min(best_s, time.perf_counter() - start)
    assert violated is False  # a valid program must replay cleanly
    return {
        "num_events": num_events,
        "us_per_event": round(best_s * 1e6 / max(1, num_events), 3),
        "max_us_per_event": MAX_OCCUPANCY_US_PER_EVENT,
    }


def _bench_aod_pairwise(cols) -> dict:
    """Best-of-N microseconds per instruction for the AOD pairwise check."""
    num_instructions = int(cols.num_instructions)
    best_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        violated = _aod_ordering_violated(cols)
        best_s = min(best_s, time.perf_counter() - start)
    assert violated is False
    return {
        "num_instructions": num_instructions,
        "us_per_instruction": round(best_s * 1e6 / max(1, num_instructions), 3),
        "max_us_per_instruction": MAX_AOD_US_PER_INSTRUCTION,
    }


def test_bench_kernels():
    architecture = reference_zoned_architecture()
    sa = _bench_sa_metropolis(architecture)
    candidate = _bench_gate_candidate_scoring(architecture)
    staging = _bench_staging_scheduler()
    program = _validator_program(architecture)
    columns = _bench_columns_build(architecture, program)
    cols = build_columns(program, architecture)
    occupancy = _bench_trap_occupancy(cols)
    aod = _bench_aod_pairwise(cols)

    payload = {
        "benchmark": "kernel_microbenchmarks",
        "sa_metropolis": sa,
        "gate_candidate_scoring": candidate,
        "staging_scheduler": staging,
        "columns_build": columns,
        "trap_occupancy_sort": occupancy,
        "aod_pairwise_check": aod,
        "recorded_unix_time": time.time(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"\n[kernels] SA {sa['us_per_iteration']:.2f} us/iteration "
        f"({sa['iterations_run']} iterations); candidate scoring "
        f"{candidate['us_per_cell']:.4f} us/cell; staging "
        f"{staging['us_per_gate']:.2f} us/gate; columns "
        f"{columns['us_per_instruction']:.2f} us/instruction; occupancy "
        f"{occupancy['us_per_event']:.2f} us/event; AOD "
        f"{aod['us_per_instruction']:.2f} us/instruction -> {RESULT_PATH.name}"
    )
    assert sa["us_per_iteration"] <= MAX_SA_US_PER_ITERATION
    assert candidate["us_per_cell"] <= MAX_CANDIDATE_US_PER_CELL
    assert staging["us_per_gate"] <= MAX_STAGING_US_PER_GATE
    assert columns["us_per_instruction"] <= MAX_COLUMNS_US_PER_INSTRUCTION
    assert occupancy["us_per_event"] <= MAX_OCCUPANCY_US_PER_EVENT
    assert aod["us_per_instruction"] <= MAX_AOD_US_PER_INSTRUCTION
