"""Benchmark E10 -- regenerates Section VIII (FTQC hIQP compilation)."""

from repro.experiments.ftqc_hiqp import run_ftqc_hiqp
from repro.experiments.reporting import format_table


def test_bench_sec8_ftqc_hiqp(benchmark):
    summary = benchmark.pedantic(run_ftqc_hiqp, args=(128,), rounds=1, iterations=1)
    print("\n[Section VIII] hIQP on 128 [[8,3,2]] blocks (paper: 35 stages, 117.847 ms)")
    print(format_table([summary]))
    assert summary["num_transversal_cnots"] == 448
    assert summary["num_logical_qubits"] == 384
    # 448 CNOTs over 15 logical sites -> 35 Rydberg stages, as in the paper.
    assert summary["num_rydberg_stages"] == 35
    assert summary["duration_ms"] > 0
