"""Benchmark E7 -- regenerates Fig. 14 (effect of the number of AODs)."""

from repro.experiments.aod_sweep import aod_gains, run_aod_sweep
from repro.experiments.reporting import format_table


def test_bench_fig14_aod_count(benchmark, circuit_subset):
    rows = benchmark.pedantic(run_aod_sweep, args=(circuit_subset,), rounds=1, iterations=1)
    print("\n[Fig. 14] AOD-count sweep")
    print(format_table(rows))
    gains = aod_gains(rows)
    print("gain over 1 AOD:", {k: f"{v * 100:+.1f}%" for k, v in gains.items()})
    # Extra AODs never reduce the geometric-mean fidelity.
    assert all(gain >= -1e-6 for gain in gains.values())
    # ...and the marginal benefit of the 4th AOD is no larger than that of the 2nd.
    assert gains["4AOD"] <= gains["2AOD"] + 0.05
