"""Verify-path (interpret + validate) speed regression benchmark.

Compiles a set of large generated circuits on several backends, then times
the verify path -- one :func:`repro.zair.interpret_program` replay plus one
:func:`repro.zair.validate_program` pass -- three ways:

* ``reference``: the per-instruction scalar oracle paths;
* ``fast_cold``: the vectorized paths including the one-time columnar
  flattening (:meth:`repro.zair.ZAIRProgram.columns`), rebuilt per
  iteration -- what a single fresh compile pays;
* ``fast_warm``: the vectorized kernels over an existing columnar view --
  what re-verification sweeps and the interpret+validate pair of one
  compile (which share the view) pay.

Results (including per-instruction microseconds) are written to
``BENCH_verify_speed.json``.  The gate: on the large-circuit subset the
vectorized verify path must be >= 5x the reference (warm kernels) and must
never lose to the reference even when paying the flattening (cold floor),
with equivalence asserted on every measured program.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict
from pathlib import Path

import pytest

import repro.api as api
from repro.circuits.random import generate
from repro.zair.interpret import interpret_program, interpret_program_reference
from repro.zair.validation import validate_program, validate_program_reference

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_verify_speed.json"

#: The gated large-circuit subset: (backend, generator, num_qubits, depth).
#: These produce programs in the hundreds-of-instructions range where the
#: verify path actually matters; atomique/ideal are measured and reported
#: but not gated (their abstract programs are too small for array kernels
#: to pay off).
LARGE_SUBSET = [
    ("zac", "brickwork", 30, 24),
    ("zac", "brickwork", 100, 16),
    ("nalac", "brickwork", 64, 12),
    ("enola", "brickwork", 64, 12),
    ("sc", "brickwork", 100, 24),
]

REPORT_ONLY = [
    ("atomique", "brickwork", 64, 12),
]

#: Gate floors on the geometric-mean speedup over LARGE_SUBSET.
MIN_WARM_SPEEDUP = 5.0
MIN_COLD_SPEEDUP = 1.15

_REPEATS = 3


def _best_of(repeats, fn) -> float:
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_equivalent(fast, ref) -> None:
    fm, rm = asdict(fast.metrics), asdict(ref.metrics)
    for field in ("num_1q_gates", "num_2q_gates", "num_excitations",
                  "num_transfers", "num_rydberg_stages", "num_movements",
                  "num_qubits", "num_instructions", "num_epochs"):
        assert fm[field] == rm[field], field
    assert fm["duration_us"] == pytest.approx(rm["duration_us"], rel=1e-12)
    assert fm["total_move_distance_um"] == pytest.approx(
        rm["total_move_distance_um"], rel=1e-12
    )
    for qubit, busy in rm["qubit_busy_us"].items():
        assert fm["qubit_busy_us"][qubit] == pytest.approx(busy, rel=1e-12)
    for name, value in ref.fidelity.as_dict().items():
        assert fast.fidelity.as_dict()[name] == pytest.approx(value, rel=1e-12), name


def _measure(backend: str, gen: str, num_qubits: int, depth: int) -> dict:
    circuit = generate(gen, seed=7, num_qubits=num_qubits, depth=depth).circuit
    t0 = time.perf_counter()
    result = api.compile(circuit, backend=backend, validate=False)
    compile_s = time.perf_counter() - t0
    program, arch = result.program, result.architecture
    params = api.create_backend(backend).params

    fast = interpret_program(program, architecture=arch, params=params)
    ref = interpret_program_reference(program, architecture=arch, params=params)
    _assert_equivalent(fast, ref)
    validate_program(arch, program, fast=True)  # must accept what reference accepts
    validate_program_reference(arch, program)

    def run_reference():
        interpret_program_reference(program, architecture=arch, params=params)
        validate_program_reference(arch, program)

    def run_fast_cold():
        program.invalidate_columns()
        interpret_program(program, architecture=arch, params=params)
        validate_program(arch, program, fast=True, reuse_columns=True)

    def run_fast_warm():
        interpret_program(program, architecture=arch, params=params)
        validate_program(arch, program, fast=True, reuse_columns=True)

    program.invalidate_columns()
    t_cold = _best_of(_REPEATS, run_fast_cold)
    t_warm = _best_of(_REPEATS, run_fast_warm)
    t_ref = _best_of(_REPEATS, run_reference)

    n_inst = max(1, program.num_zair_instructions)
    return {
        "backend": backend,
        "circuit": circuit.name,
        "num_zair_instructions": program.num_zair_instructions,
        "compile_s": round(compile_s, 4),
        "reference_ms": round(t_ref * 1e3, 4),
        "fast_cold_ms": round(t_cold * 1e3, 4),
        "fast_warm_ms": round(t_warm * 1e3, 4),
        "reference_us_per_inst": round(t_ref * 1e6 / n_inst, 3),
        "fast_cold_us_per_inst": round(t_cold * 1e6 / n_inst, 3),
        "fast_warm_us_per_inst": round(t_warm * 1e6 / n_inst, 3),
        "cold_speedup": round(t_ref / t_cold, 2),
        "warm_speedup": round(t_ref / t_warm, 2),
    }


def _geomean(values) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_bench_verify_speed():
    gated = [_measure(*spec) for spec in LARGE_SUBSET]
    extra = [_measure(*spec) for spec in REPORT_ONLY]

    warm = _geomean([row["warm_speedup"] for row in gated])
    cold = _geomean([row["cold_speedup"] for row in gated])

    payload = {
        "benchmark": "verify_speed",
        "gated_subset": gated,
        "report_only": extra,
        "geomean_warm_speedup": round(warm, 2),
        "geomean_cold_speedup": round(cold, 2),
        "min_required_warm_speedup": MIN_WARM_SPEEDUP,
        "min_required_cold_speedup": MIN_COLD_SPEEDUP,
        "recorded_unix_time": time.time(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"\n[verify speed] warm {warm:.1f}x / cold {cold:.2f}x vs reference "
        f"over {len(gated)} large programs -> {RESULT_PATH.name}"
    )
    assert warm >= MIN_WARM_SPEEDUP, (
        f"vectorized verify warm speedup {warm:.2f}x below the "
        f"{MIN_WARM_SPEEDUP}x floor; see {RESULT_PATH}"
    )
    assert cold >= MIN_COLD_SPEEDUP, (
        f"vectorized verify cold speedup {cold:.2f}x below the "
        f"{MIN_COLD_SPEEDUP}x floor; see {RESULT_PATH}"
    )
