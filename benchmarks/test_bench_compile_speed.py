"""Compile-speed regression benchmark.

Times the end-to-end ZAC compile of the ``FAST_SUBSET`` circuits twice: with
the optimised hot paths (incremental SA cost, cached geometry, vectorized
conflict graph, heap-based partitioning) and with the retained naive
reference implementations (``ZACConfig(use_fast_paths=False)``), which match
the seed implementation's asymptotics.  The per-circuit numbers and the
aggregate speedup are recorded to ``BENCH_compile_speed.json`` at the repo
root so the performance trajectory is tracked from PR to PR.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.arch.presets import reference_zoned_architecture
from repro.circuits.library.registry import get_benchmark
from repro.core.compiler import ZACCompiler
from repro.core.config import ZACConfig

from conftest import FAST_SUBSET

#: Aggregate speedup the fast paths must sustain over the naive references.
#: Raised 3.0 -> 4.0 when the vectorized placement engine landed (batched
#: SA proposal costing plus array-backed candidate/return-trap scoring).
MIN_SPEEDUP = 4.0

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_compile_speed.json"


def _best_compile_time_s(compiler: ZACCompiler, circuit, repeats: int) -> tuple[float, dict]:
    best = float("inf")
    phases: dict[str, float] = {}
    for _ in range(repeats):
        result = compiler.compile(circuit)
        if result.metrics.compile_time_s < best:
            best = result.metrics.compile_time_s
            phases = dict(result.metrics.phase_times_s)
    return best, phases


def test_bench_compile_speed():
    architecture = reference_zoned_architecture()
    fast_config = ZACConfig.full()
    naive_config = dataclasses.replace(fast_config, use_fast_paths=False)

    rows = []
    total_fast = total_naive = 0.0
    for name in FAST_SUBSET:
        circuit = get_benchmark(name)
        fast_s, fast_phases = _best_compile_time_s(
            ZACCompiler(architecture, fast_config), circuit, repeats=3
        )
        naive_s, _ = _best_compile_time_s(
            ZACCompiler(architecture, naive_config), circuit, repeats=2
        )
        total_fast += fast_s
        total_naive += naive_s
        rows.append(
            {
                "circuit": name,
                "fast_s": round(fast_s, 6),
                "naive_s": round(naive_s, 6),
                "speedup": round(naive_s / fast_s, 3),
                "fast_phase_times_s": {k: round(v, 6) for k, v in fast_phases.items()},
            }
        )

    speedup = total_naive / total_fast
    payload = {
        "benchmark": "end_to_end_zac_compile",
        "circuits": rows,
        "total_fast_s": round(total_fast, 6),
        "total_naive_s": round(total_naive, 6),
        "speedup": round(speedup, 3),
        "min_required_speedup": MIN_SPEEDUP,
        "recorded_unix_time": time.time(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"\n[compile speed] fast={total_fast:.3f}s naive={total_naive:.3f}s "
          f"speedup={speedup:.2f}x -> {RESULT_PATH.name}")
    assert speedup >= MIN_SPEEDUP, (
        f"fast paths only {speedup:.2f}x faster than the naive references "
        f"(required: {MIN_SPEEDUP}x); see {RESULT_PATH}"
    )
