"""Diff the BENCH_*.json perf numbers against a previous commit.

Usage::

    python benchmarks/bench_diff.py [--ref HEAD~1] [--threshold 0.2] [--strict]

For every ``BENCH_*.json`` at the repo root, the previous version is read
from git (``git show <ref>:<file>``) and every numeric leaf is compared.
Changes beyond the threshold are printed, classified by metric direction:

* higher-is-better metrics (``speedup``, ``*_per_s``, ``improvement``) that
  *dropped* are regressions;
* lower-is-better metrics (``*_s``, ``*_us``, ``us_per_*``, ``iterations``)
  that *rose* are regressions;
* anything else beyond the threshold is reported as drift.

The script is informational and always exits 0 unless ``--strict`` is given
(then regressions exit 1).  CI runs it non-gating: shared runners are too
noisy to gate on (the in-test floors remain the gate); the value is making
the trajectory visible on every PR.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Leaf keys that are not performance numbers.
IGNORED_KEYS = {"recorded_unix_time"}

HIGHER_IS_BETTER = ("speedup", "per_s", "improvement", "hits")
LOWER_IS_BETTER = ("_s", "_us", "us_per", "iterations", "misses", "cost")


def _numeric_leaves(data, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts/lists to ``dotted.path -> number``."""
    out: dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            if key in IGNORED_KEYS:
                continue
            out.update(_numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            out.update(_numeric_leaves(value, f"{prefix}{index}."))
    elif isinstance(data, bool):
        pass
    elif isinstance(data, (int, float)):
        out[prefix.rstrip(".")] = float(data)
    return out


def _direction(path: str) -> int:
    """+1 if higher is better, -1 if lower is better, 0 if unknown.

    The leaf key is checked first; when it carries no hint (e.g. the phase
    name under ``fast_phase_times_s``), the full path decides.
    """
    for candidate in (path.rsplit(".", 1)[-1], path):
        if any(tag in candidate for tag in HIGHER_IS_BETTER):
            return 1
        if any(tag in candidate for tag in LOWER_IS_BETTER):
            return -1
    return 0


def _previous_version(ref: str, name: str) -> dict | None:
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def diff_file(path: Path, ref: str, threshold: float) -> tuple[list[str], int]:
    """Return (report lines, regression count) for one BENCH file.

    A file (or metric key) with no previous version is a *new* benchmark,
    not an error: it is reported as ``[new]`` and never counts as a
    regression, so landing a benchmark and its first ledger in one commit
    keeps the diff clean.
    """
    new = _numeric_leaves(json.loads(path.read_text()))
    previous = _previous_version(ref, path.name)
    if previous is None:
        return [f"{path.name}: {len(new)} metric(s), no version at {ref} [new]"], 0
    old = _numeric_leaves(previous)

    lines: list[str] = []
    regressions = 0
    for key in sorted(new.keys() - old.keys()):
        lines.append(f"{path.name}: {key} = {new[key]:g} [new]")
    for key in sorted(old.keys() & new.keys()):
        before, after = old[key], new[key]
        if before == after:
            continue
        base = max(abs(before), 1e-12)
        change = (after - before) / base
        if abs(change) < threshold:
            continue
        direction = _direction(key)
        if direction > 0 and change < 0 or direction < 0 and change > 0:
            tag = "REGRESSION"
            regressions += 1
        elif direction == 0:
            tag = "drift"
        else:
            tag = "improved"
        lines.append(
            f"{path.name}: {key} {before:g} -> {after:g} "
            f"({change:+.1%}) [{tag}]"
        )
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ref", default="HEAD~1", help="git ref to diff against (default HEAD~1)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative change worth reporting (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when regressions are found (default: informational)",
    )
    args = parser.parse_args(argv)

    bench_files = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not bench_files:
        print("no BENCH_*.json files at the repo root")
        return 0

    total_regressions = 0
    any_output = False
    for path in bench_files:
        lines, regressions = diff_file(path, args.ref, args.threshold)
        total_regressions += regressions
        for line in lines:
            any_output = True
            print(line)
    if not any_output:
        print(
            f"all BENCH numbers within {args.threshold:.0%} of {args.ref} "
            f"({len(bench_files)} files)"
        )
    elif total_regressions:
        print(f"-- {total_regressions} regression(s) beyond {args.threshold:.0%}")
    return 1 if (args.strict and total_regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
