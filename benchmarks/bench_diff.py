"""Diff the BENCH_*.json perf numbers against a previous commit.

Usage::

    python benchmarks/bench_diff.py [--ref HEAD~1] [--threshold 0.2] [--strict]
    python benchmarks/bench_diff.py --attribution [--max-commits 20]

For every ``BENCH_*.json`` at the repo root, the previous version is read
from git (``git show <ref>:<file>``) and every numeric leaf is compared.
Changes beyond the threshold are printed, classified by metric direction:

* higher-is-better metrics (``speedup``, ``*_per_s``, ``improvement``) that
  *dropped* are regressions;
* lower-is-better metrics (``*_s``, ``*_us``, ``us_per_*``, ``iterations``)
  that *rose* are regressions;
* anything else beyond the threshold is reported as drift.

``--attribution`` switches to a roofline-style view of *where compile time
goes*: it walks the git history of ``BENCH_compile_speed.json``, sums the
per-circuit ``fast_phase_times_s`` into per-phase totals for every commit
that touched the ledger, and prints one row per commit with each phase's
absolute time, share of the total, and commit-over-commit delta.  This
answers "which phase did that optimisation PR actually shrink, and what
dominates now" without re-running anything.

The script is informational and always exits 0 unless ``--strict`` is given
(then regressions exit 1).  CI runs it non-gating: shared runners are too
noisy to gate on (the in-test floors remain the gate); the value is making
the trajectory visible on every PR.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Leaf keys that are not performance numbers.
IGNORED_KEYS = {"recorded_unix_time"}

HIGHER_IS_BETTER = ("speedup", "per_s", "improvement", "hits")
LOWER_IS_BETTER = ("_s", "_us", "us_per", "iterations", "misses", "cost")


def _numeric_leaves(data, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts/lists to ``dotted.path -> number``."""
    out: dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            if key in IGNORED_KEYS:
                continue
            out.update(_numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            out.update(_numeric_leaves(value, f"{prefix}{index}."))
    elif isinstance(data, bool):
        pass
    elif isinstance(data, (int, float)):
        out[prefix.rstrip(".")] = float(data)
    return out


def _direction(path: str) -> int:
    """+1 if higher is better, -1 if lower is better, 0 if unknown.

    The leaf key is checked first; when it carries no hint (e.g. the phase
    name under ``fast_phase_times_s``), the full path decides.
    """
    for candidate in (path.rsplit(".", 1)[-1], path):
        if any(tag in candidate for tag in HIGHER_IS_BETTER):
            return 1
        if any(tag in candidate for tag in LOWER_IS_BETTER):
            return -1
    return 0


def _previous_version(ref: str, name: str) -> dict | None:
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def diff_file(path: Path, ref: str, threshold: float) -> tuple[list[str], int]:
    """Return (report lines, regression count) for one BENCH file.

    A file (or metric key) with no previous version is a *new* benchmark,
    not an error: it is reported as ``[new]`` and never counts as a
    regression, so landing a benchmark and its first ledger in one commit
    keeps the diff clean.
    """
    new = _numeric_leaves(json.loads(path.read_text()))
    previous = _previous_version(ref, path.name)
    if previous is None:
        return [f"{path.name}: {len(new)} metric(s), no version at {ref} [new]"], 0
    old = _numeric_leaves(previous)

    lines: list[str] = []
    regressions = 0
    for key in sorted(new.keys() - old.keys()):
        lines.append(f"{path.name}: {key} = {new[key]:g} [new]")
    for key in sorted(old.keys() & new.keys()):
        before, after = old[key], new[key]
        if before == after:
            continue
        base = max(abs(before), 1e-12)
        change = (after - before) / base
        if abs(change) < threshold:
            continue
        direction = _direction(key)
        if direction > 0 and change < 0 or direction < 0 and change > 0:
            tag = "REGRESSION"
            regressions += 1
        elif direction == 0:
            tag = "drift"
        else:
            tag = "improved"
        lines.append(
            f"{path.name}: {key} {before:g} -> {after:g} "
            f"({change:+.1%}) [{tag}]"
        )
    return lines, regressions


ATTRIBUTION_FILE = "BENCH_compile_speed.json"


def _phase_totals(data: dict) -> dict[str, float]:
    """Per-phase wall-clock totals summed over the ledger's circuits."""
    totals: dict[str, float] = {}
    for circuit in data.get("circuits", []):
        phases = circuit.get("fast_phase_times_s") or {}
        for phase, seconds in phases.items():
            if isinstance(seconds, (int, float)) and not isinstance(seconds, bool):
                totals[phase] = totals.get(phase, 0.0) + float(seconds)
    return totals


def _ledger_history(name: str, max_commits: int) -> list[tuple[str, dict[str, float]]]:
    """(label, phase totals) per commit that touched the ledger, oldest first.

    The working tree's current file is appended as a final ``worktree`` row
    when it differs from the newest committed version, so a freshly
    regenerated (uncommitted) ledger shows up in the table.
    """
    proc = subprocess.run(
        ["git", "log", "--format=%H", "--", name],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    shas = proc.stdout.split() if proc.returncode == 0 else []
    shas.reverse()  # oldest first
    if max_commits > 0:
        shas = shas[-max_commits:]

    rows: list[tuple[str, dict[str, float]]] = []
    for sha in shas:
        data = _previous_version(sha, name)
        if data is None:
            continue
        totals = _phase_totals(data)
        if totals:
            rows.append((sha[:9], totals))

    path = REPO_ROOT / name
    if path.exists():
        try:
            totals = _phase_totals(json.loads(path.read_text()))
        except json.JSONDecodeError:
            totals = {}
        if totals and (not rows or totals != rows[-1][1]):
            rows.append(("worktree", totals))
    return rows


def attribution(name: str = ATTRIBUTION_FILE, max_commits: int = 20) -> int:
    """Print the per-phase attribution table over the ledger's history."""
    rows = _ledger_history(name, max_commits)
    if not rows:
        print(f"no fast_phase_times_s history found for {name}")
        return 0

    # Column order: the newest row's heaviest phase first, then any phase
    # that only ever appeared in older ledgers.
    newest = rows[-1][1]
    phases = sorted(newest, key=newest.get, reverse=True)
    for _, totals in rows:
        for phase in totals:
            if phase not in phases:
                phases.append(phase)

    print(f"phase attribution: {name} (fast_phase_times_s summed over circuits)")
    header = f"{'commit':<10} {'total_ms':>9}"
    for phase in phases:
        header += f"  {phase:>21}"
    print(header)

    previous: dict[str, float] | None = None
    for label, totals in rows:
        total = sum(totals.values())
        line = f"{label:<10} {total * 1e3:>9.1f}"
        for phase in phases:
            value = totals.get(phase)
            if value is None:
                line += f"  {'-':>21}"
                continue
            share = value / total if total else 0.0
            cell = f"{value * 1e3:8.1f} {share:5.1%}"
            if previous is not None and previous.get(phase):
                change = (value - previous[phase]) / previous[phase]
                cell += f" {change:+5.0%}"
            else:
                cell += "      "
            line += f"  {cell:>21}"
        print(line)
        previous = totals
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ref", default="HEAD~1", help="git ref to diff against (default HEAD~1)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="relative change worth reporting (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when regressions are found (default: informational)",
    )
    parser.add_argument(
        "--attribution",
        action="store_true",
        help="print the per-phase compile-time attribution table over the "
        f"git history of {ATTRIBUTION_FILE} instead of diffing",
    )
    parser.add_argument(
        "--max-commits",
        type=int,
        default=20,
        help="history depth of the attribution table (0 = unlimited)",
    )
    args = parser.parse_args(argv)

    if args.attribution:
        return attribution(max_commits=args.max_commits)

    bench_files = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not bench_files:
        print("no BENCH_*.json files at the repo root")
        return 0

    total_regressions = 0
    any_output = False
    for path in bench_files:
        lines, regressions = diff_file(path, args.ref, args.threshold)
        total_regressions += regressions
        for line in lines:
            any_output = True
            print(line)
    if not any_output:
        print(
            f"all BENCH numbers within {args.threshold:.0%} of {args.ref} "
            f"({len(bench_files)} files)"
        )
    elif total_regressions:
        print(f"-- {total_regressions} regression(s) beyond {args.threshold:.0%}")
    return 1 if (args.strict and total_regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
