"""Benchmark E1 -- regenerates Fig. 8 (fidelity across architectures)."""

from repro.experiments.architecture_comparison import (
    fidelity_table,
    improvement_summary,
    run_architecture_comparison,
)
from repro.experiments.reporting import format_table


def test_bench_fig08_architecture_comparison(benchmark, circuit_subset):
    records = benchmark.pedantic(
        run_architecture_comparison, args=(circuit_subset,), rounds=1, iterations=1
    )
    table = fidelity_table(records)
    ratios = improvement_summary(records)
    print("\n[Fig. 8] circuit fidelity across architectures")
    print(format_table(table))
    print("ZAC geomean improvement:", {k: round(v, 2) for k, v in ratios.items()})
    # Shape check: ZAC beats both monolithic compilers in the geometric mean.
    assert ratios["Monolithic-Enola"] > 1.0
    assert ratios["Monolithic-Atomique"] > 1.0
    assert ratios["Zoned-NALAC"] > 1.0
