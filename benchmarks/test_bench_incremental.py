"""Incremental prefix-reuse compilation benchmark (ROADMAP item 3).

Measures the two reuse paths of :mod:`repro.core.incremental` and records
them to ``BENCH_incremental_speed.json`` at the repo root:

* **Depth-ladder extension**: a brickwork ladder is compiled rung by rung,
  shallowest first.  Cold compiles every rung from scratch (caches cleared);
  incremental resumes each rung from the previous rung's cached prefix and
  only places/routes the delta stages.  The aggregate extension speedup is
  gated at ``MIN_LADDER_SPEEDUP``.
* **Warm-start SA convergence**: the annealer is seeded with the converged
  placement of a shallower structural sibling instead of the trivial
  placement.  The warm run must converge in no more iterations than the
  cold run and reach at least as good a cost (within tolerance).

Every incremental program is re-validated against the hardware invariants
(:func:`repro.zair.validate_program`) -- speed never buys invalidity.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.arch.presets import reference_zoned_architecture
from repro.circuits.random import generate
from repro.circuits.scheduling import clear_preprocess_cache, preprocess
from repro.circuits.synthesis import get_resynthesis_prefix_cache
from repro.core.compiler import ZACCompiler
from repro.core.config import ZACConfig
from repro.core.incremental import clear_prefix_cache, get_prefix_cache
from repro.core.placement.initial import sa_placement
from repro.zair import validate_program

#: Aggregate speedup of incremental extension rungs over cold recompiles.
#: Standalone runs measure ~4-5x; the floor leaves headroom for a loaded
#: 1-CPU box.
MIN_LADDER_SPEEDUP = 3.0

#: Warm-start quality tolerance: warm best cost may exceed cold best cost by
#: at most this factor (the annealer keeps the best state seen, so a warm
#: seed can only degrade convergence speed, not correctness).
WARM_COST_TOLERANCE = 1.05

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_incremental_speed.json"

NUM_QUBITS = 30
DEPTHS = [14, 16, 18, 20, 22, 24, 26, 28]
LADDER_REPS = 3


def _ladder_circuits():
    return [
        generate("brickwork", seed=0, num_qubits=NUM_QUBITS, depth=depth).circuit
        for depth in DEPTHS
    ]


def _clear_all_caches() -> None:
    clear_prefix_cache()
    clear_preprocess_cache()
    get_resynthesis_prefix_cache().clear()


def _time_ladder(compiler: ZACCompiler, circuits, per_rung_clear: bool):
    """Compile the ladder shallowest-first; return (per-rung seconds, results)."""
    times: list[float] = []
    results = []
    _clear_all_caches()
    for circuit in circuits:
        if per_rung_clear:
            _clear_all_caches()
        start = time.perf_counter()
        result = compiler.compile(circuit)
        times.append(time.perf_counter() - start)
        results.append(result)
    return times, results


def test_bench_incremental_ladder_and_warm_start():
    architecture = reference_zoned_architecture()
    base = ZACConfig.full()
    cold_config = dataclasses.replace(base, incremental=False, warm_start=False)
    inc_config = dataclasses.replace(base, incremental=True, warm_start=True)
    circuits = _ladder_circuits()

    # -- depth-ladder extension -------------------------------------------
    best_cold = None
    best_inc = None
    inc_results = None
    for _ in range(LADDER_REPS):
        cold_times, _ = _time_ladder(
            ZACCompiler(architecture, cold_config), circuits, per_rung_clear=True
        )
        inc_times, results = _time_ladder(
            ZACCompiler(architecture, inc_config), circuits, per_rung_clear=False
        )
        if best_cold is None or sum(cold_times[1:]) < sum(best_cold[1:]):
            best_cold = cold_times
        if best_inc is None or sum(inc_times[1:]) < sum(best_inc[1:]):
            best_inc = inc_times
            inc_results = results

    # Every incremental rung must still satisfy the hardware invariants.
    for result in inc_results:
        validate_program(architecture, result.program)

    # The first rung is a cache miss for both modes; the extension rungs are
    # where the O(delta) resume pays off.
    cold_ext = sum(best_cold[1:])
    inc_ext = sum(best_inc[1:])
    ladder_speedup = cold_ext / inc_ext
    prefix_stats = get_prefix_cache().stats()

    rungs = []
    for index, depth in enumerate(DEPTHS):
        rungs.append(
            {
                "depth": depth,
                "cold_s": round(best_cold[index], 6),
                "incremental_s": round(best_inc[index], 6),
                "speedup": round(best_cold[index] / best_inc[index], 3),
            }
        )

    # -- warm-start SA convergence ----------------------------------------
    # Seed the annealer for a deep circuit with the converged placement of a
    # shallower sibling -- the warm path taken when no cached circuit is an
    # exact prefix of the request.  QAOA on an Erdos-Renyi graph: both
    # depths share the interaction graph (same generator seed), and its
    # irregularity gives the annealer real work, unlike regular brickwork.
    def stage_pairs_of(depth):
        circuit = generate(
            "qaoa_erdos_renyi", seed=0, num_qubits=NUM_QUBITS, depth=depth
        ).circuit
        return [
            stage.pairs for stage in preprocess(circuit, cache=False).rydberg_stages
        ]

    warm_seed_depth = 6
    warm_target_depth = 10
    shallow_pairs = stage_pairs_of(warm_seed_depth)
    deep_pairs = stage_pairs_of(warm_target_depth)

    captured: dict[str, object] = {}
    seed_placement = sa_placement(
        architecture,
        NUM_QUBITS,
        shallow_pairs,
        base,
        on_result=lambda r: captured.__setitem__("seed", r),
    )
    cold_sa = {}
    sa_placement(
        architecture,
        NUM_QUBITS,
        deep_pairs,
        base,
        on_result=lambda r: cold_sa.__setitem__("r", r),
    )
    warm_sa = {}
    sa_placement(
        architecture,
        NUM_QUBITS,
        deep_pairs,
        base,
        on_result=lambda r: warm_sa.__setitem__("r", r),
        warm_start=seed_placement,
    )
    cold_result = cold_sa["r"]
    warm_result = warm_sa["r"]

    payload = {
        "benchmark": "incremental_prefix_reuse",
        "ladder": {
            "generator": "brickwork",
            "num_qubits": NUM_QUBITS,
            "depths": DEPTHS,
            "rungs": rungs,
            "cold_extension_s": round(cold_ext, 6),
            "incremental_extension_s": round(inc_ext, 6),
            "extension_speedup": round(ladder_speedup, 3),
            "min_required_speedup": MIN_LADDER_SPEEDUP,
            "prefix_cache": prefix_stats,
        },
        "warm_start_sa": {
            "workload": "qaoa_erdos_renyi",
            "num_qubits": NUM_QUBITS,
            "seed_depth": warm_seed_depth,
            "target_depth": warm_target_depth,
            "cold_iterations": cold_result.iterations,
            "warm_iterations": warm_result.iterations,
            "cold_best_cost": round(cold_result.best_cost, 6),
            "warm_best_cost": round(warm_result.best_cost, 6),
            "cold_initial_cost": round(cold_result.initial_cost, 6),
            "warm_initial_cost": round(warm_result.initial_cost, 6),
        },
        "recorded_unix_time": time.time(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"\n[incremental] ladder extension cold={cold_ext:.3f}s "
        f"inc={inc_ext:.3f}s speedup={ladder_speedup:.2f}x; "
        f"warm SA {warm_result.iterations} vs cold {cold_result.iterations} "
        f"iterations -> {RESULT_PATH.name}"
    )

    assert ladder_speedup >= MIN_LADDER_SPEEDUP, (
        f"incremental extension only {ladder_speedup:.2f}x faster than cold "
        f"recompiles (required: {MIN_LADDER_SPEEDUP}x); see {RESULT_PATH}"
    )
    assert warm_result.iterations <= cold_result.iterations, (
        f"warm-started SA took {warm_result.iterations} iterations vs "
        f"{cold_result.iterations} cold"
    )
    assert warm_result.best_cost <= cold_result.best_cost * WARM_COST_TOLERANCE, (
        f"warm-started SA cost {warm_result.best_cost:.4f} worse than "
        f"{WARM_COST_TOLERANCE}x cold cost {cold_result.best_cost:.4f}"
    )
