"""Unit tests for resynthesis to the {CZ, U3} gate set."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.synthesis import (
    SynthesisError,
    circuit_unitary,
    decompose_to_cz,
    merge_single_qubit_runs,
    resynthesize,
)


def unitaries_equal_up_to_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-7) -> bool:
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    if abs(a[index]) < 1e-9 or abs(b[index]) < 1e-9:
        return False
    return np.allclose(a / a[index], b / b[index], atol=atol)


def build(num_qubits, ops):
    circ = QuantumCircuit(num_qubits)
    for name, qubits, params in ops:
        circ.add(name, *qubits, params=params)
    return circ


class TestDecomposition:
    @pytest.mark.parametrize(
        "ops,num_qubits",
        [
            ([("cx", (0, 1), ())], 2),
            ([("swap", (0, 1), ())], 2),
            ([("cy", (0, 1), ())], 2),
            ([("ch", (0, 1), ())], 2),
            ([("cp", (0, 1), (0.7,))], 2),
            ([("crz", (0, 1), (1.1,))], 2),
            ([("cry", (0, 1), (0.9,))], 2),
            ([("crx", (0, 1), (0.4,))], 2),
            ([("rzz", (0, 1), (0.8,))], 2),
            ([("rxx", (0, 1), (0.6,))], 2),
            ([("iswap", (0, 1), ())], 2),
            ([("ccx", (0, 1, 2), ())], 3),
            ([("ccz", (0, 1, 2), ())], 3),
            ([("cswap", (0, 1, 2), ())], 3),
        ],
    )
    def test_decomposition_preserves_unitary(self, ops, num_qubits):
        original = build(num_qubits, ops)
        decomposed = decompose_to_cz(original)
        assert all(g.name == "cz" or g.num_qubits == 1 for g in decomposed)
        u_orig = circuit_unitary(_expand_for_reference(original))
        u_new = circuit_unitary(decomposed)
        assert unitaries_equal_up_to_phase(u_orig, u_new)

    def test_unknown_gate_raises(self):
        from repro.circuits.gates import Gate

        circ = QuantumCircuit(4)
        # Bypass add() validation to simulate a foreign gate name.
        circ._gates.append(Gate("weird4q", (0, 1, 2, 3)))
        with pytest.raises(SynthesisError):
            decompose_to_cz(circ)


def _expand_for_reference(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand gates unsupported by circuit_unitary into cx/cz/1q first."""
    return decompose_to_cz(circuit)


class TestMerging:
    def test_merges_run_into_single_u3(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        circ.t(0)
        circ.h(0)
        merged = merge_single_qubit_runs(circ)
        assert len(merged) == 1
        assert merged.gates[0].name == "u3"

    def test_identity_run_removed(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        circ.h(0)
        merged = merge_single_qubit_runs(circ)
        assert len(merged) == 0

    def test_cz_flushes_pending(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.cz(0, 1)
        circ.h(0)
        merged = merge_single_qubit_runs(circ)
        names = [g.name for g in merged]
        assert names == ["u3", "cz", "u3"]

    def test_rejects_non_cz_two_qubit(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        with pytest.raises(SynthesisError):
            merge_single_qubit_runs(circ)


class TestResynthesis:
    def test_output_gate_set(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.ccx(0, 1, 2)
        circ.cp(0.3, 1, 2)
        out = resynthesize(circ)
        assert set(g.name for g in out) <= {"u3", "cz"}

    def test_preserves_unitary_small(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.cx(0, 1)
        circ.ccx(0, 1, 2)
        circ.rz(0.3, 2)
        out = resynthesize(circ)
        reference = circuit_unitary(decompose_to_cz(circ))
        produced = circuit_unitary(out)
        assert unitaries_equal_up_to_phase(reference, produced)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_circuits_preserve_unitary(self, seed):
        circ = random_circuit(3, 12, two_qubit_fraction=0.4, seed=seed)
        out = resynthesize(circ)
        assert set(g.name for g in out) <= {"u3", "cz"}
        reference = circuit_unitary(decompose_to_cz(circ))
        produced = circuit_unitary(out)
        assert unitaries_equal_up_to_phase(reference, produced)

    def test_resynthesis_never_increases_2q_count_for_native_circuits(self):
        circ = QuantumCircuit(4)
        for _ in range(3):
            circ.cz(0, 1)
            circ.cz(2, 3)
            circ.rz(0.1, 0)
        out = resynthesize(circ)
        assert out.num_2q_gates == circ.num_2q_gates
