"""Cross-process determinism (ROADMAP open item).

Compiling the same circuit in two fresh Python processes -- with no
``PYTHONHASHSEED`` pinned, so each process gets its own string-hash seed --
must produce identical results.  The historic offender was the reuse
matching, whose networkx Hopcroft-Karp run iterated internal sets of
``("prev", i)`` string-tuple nodes and therefore picked a seed-dependent
maximum matching; the graph now uses integer node ids.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: qft_n18 is the circuit the ROADMAP cited as varying ~1% across processes.
_SCRIPT = """
import repro.api as api

result = api.compile("qft_n18", backend="zac", validate=False)
print(repr(result.metrics.duration_us))
print(repr(result.fidelity.total))
print(result.metrics.num_transfers, result.metrics.num_movements)
"""


def _compile_in_fresh_process() -> str:
    env = dict(os.environ)
    # The whole point: no pinned hash seed; each process randomises its own.
    env.pop("PYTHONHASHSEED", None)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_same_compile_in_two_fresh_processes_is_identical():
    first = _compile_in_fresh_process()
    second = _compile_in_fresh_process()
    assert first == second
