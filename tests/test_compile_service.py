"""Warm-pool batch compile service: cache, fresh, slim, and fan-out rules."""

from __future__ import annotations

import pytest

import repro.api as api
from repro.api import get_compile_service, get_worker_pool
from repro.api.parallel import (
    MIN_PARALLEL_ITEMS,
    architecture_fingerprint,
    circuit_content_key,
    fanout_map,
)
from repro.arch.presets import reference_zoned_architecture
from repro.circuits.random import generate
from repro.experiments.fuzz import FUZZ_ZAC_CONFIG


@pytest.fixture()
def service():
    svc = get_compile_service()
    svc.clear_cache()
    yield svc
    svc.clear_cache()


def _circuit(seed=0, n=5, depth=2):
    return generate("brickwork", seed=seed, num_qubits=n, depth=depth).circuit


class TestCompileCache:
    def test_repeated_cells_hit(self, service):
        circuit = _circuit()
        first = api.compile_many([circuit], backend="enola", cache=True)[0]
        second = api.compile_many([circuit], backend="enola", cache=True)[0]
        assert second is first
        assert service.cache.stats()["hits"] == 1

    def test_fresh_bypasses_the_cache(self, service):
        circuit = _circuit()
        first = api.compile_many([circuit], backend="enola", cache=True)[0]
        fresh = api.compile_many(
            [circuit], backend="enola", cache=True, fresh=True
        )[0]
        assert fresh is not first
        # ... but it is the same compilation result.
        assert fresh.to_dict()["metrics"]["duration_us"] == first.duration_us

    def test_key_discriminates_circuit_content(self, service):
        a = _circuit(seed=1)
        b = _circuit(seed=2)
        api.compile_many([a], backend="enola", cache=True)
        api.compile_many([b], backend="enola", cache=True)
        assert service.cache.stats()["hits"] == 0

    def test_key_discriminates_options(self, service):
        circuit = _circuit()
        api.compile_many([circuit], backend="zac", cache=True)
        api.compile_many(
            [circuit], backend="zac", cache=True, config=FUZZ_ZAC_CONFIG
        )
        assert service.cache.stats()["hits"] == 0

    def test_default_arch_by_omission_and_explicitly_share_cells(self, service):
        circuit = _circuit()
        api.compile_many([circuit], backend="zac", cache=True)
        explicit = reference_zoned_architecture()
        api.compile_many([circuit], backend="zac", arch=explicit, cache=True)
        assert service.cache.stats()["hits"] == 1

    def test_validated_flag_set_on_hits(self, service):
        circuit = _circuit()
        api.compile_many([circuit], backend="enola", cache=True, validate=False)
        hit = api.compile_many([circuit], backend="enola", cache=True)[0]
        assert hit.validated

    def test_cache_off_by_default(self, service):
        circuit = _circuit()
        api.compile_many([circuit], backend="enola")
        api.compile_many([circuit], backend="enola")
        assert len(service.cache) == 0


class TestIdealSharesZacCompiles:
    def test_ideal_after_zac_hits(self, service):
        circuit = _circuit()
        api.compile_many([circuit], backend="zac", cache=True)
        ideal = api.compile_many([circuit], backend="ideal", cache=True)[0]
        assert service.cache.stats()["hits"] >= 1
        uncached = api.compile(circuit, backend="ideal")
        assert ideal.total_fidelity == pytest.approx(
            uncached.total_fidelity, rel=1e-12
        )
        assert ideal.duration_us == pytest.approx(uncached.duration_us, rel=1e-12)

    def test_zac_after_ideal_hits(self, service):
        circuit = _circuit()
        api.compile_many([circuit], backend="ideal", cache=True)
        api.compile_many([circuit], backend="zac", cache=True)
        assert service.cache.stats()["hits"] >= 1

    def test_fresh_ideal_recompiles_its_inner_zac(self, service):
        circuit = _circuit()
        api.compile_many([circuit], backend="zac", cache=True)
        hits_before = service.cache.stats()["hits"]
        api.compile_many([circuit], backend="ideal", cache=True, fresh=True)
        assert service.cache.stats()["hits"] == hits_before


class TestSlimResults:
    def test_keep_programs_false_strips_artifacts(self, service):
        result = api.compile_many(
            [_circuit()], backend="zac", keep_programs=False
        )[0]
        assert result.program is None
        assert result.staged is None
        assert result.plan is None
        assert result.architecture is None
        assert result.metrics is not None and result.fidelity is not None
        assert result.validated  # validation ran before stripping

    def test_slim_cache_entry_does_not_serve_full_requests(self, service):
        circuit = _circuit()
        api.compile_many([circuit], backend="enola", cache=True, keep_programs=False)
        full = api.compile_many([circuit], backend="enola", cache=True)[0]
        assert full.program is not None

    def test_slim_unvalidated_entry_never_fakes_validation(self, service):
        # A stripped entry cannot be validated after the fact: a later
        # validate=True request must recompile, not claim validation.
        circuit = _circuit()
        api.compile_many(
            [circuit], backend="enola", cache=True, keep_programs=False,
            validate=False,
        )
        result = api.compile_many(
            [circuit], backend="enola", cache=True, keep_programs=False
        )[0]
        assert result.validated
        assert service.cache.stats()["misses"] >= 2  # genuinely recompiled


class TestFanout:
    def test_small_batches_run_inline(self):
        pool = get_worker_pool()
        pool.shutdown()
        items = list(range(MIN_PARALLEL_ITEMS - 1))
        assert fanout_map(abs, items, parallel=8) == items
        # No executor was spun up for the tiny batch.
        assert pool._executor is None

    def test_results_keep_submission_order(self):
        items = list(range(12))
        assert fanout_map(abs, items, parallel=2) == items


class TestKeys:
    def test_circuit_content_key_tracks_gates(self):
        a = _circuit(seed=3)
        b = a.copy()
        assert circuit_content_key(a) == circuit_content_key(b)
        b.h(0)
        assert circuit_content_key(a) != circuit_content_key(b)

    def test_architecture_fingerprint_is_value_based(self):
        assert architecture_fingerprint(
            reference_zoned_architecture()
        ) == architecture_fingerprint(reference_zoned_architecture())
        assert architecture_fingerprint(None) is None
