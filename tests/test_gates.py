"""Unit tests for repro.circuits.gates."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import (
    Gate,
    GateError,
    cx,
    cz,
    is_identity,
    matrix_to_u3,
    single_qubit_matrix,
    u3,
    u3_matrix,
)


class TestGateConstruction:
    def test_basic_fields(self):
        gate = Gate("cz", (0, 1))
        assert gate.num_qubits == 2
        assert gate.is_two_qubit
        assert not gate.is_single_qubit

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(GateError):
            Gate("cz", (1, 1))

    def test_empty_qubits_rejected(self):
        with pytest.raises(GateError):
            Gate("x", ())

    def test_remapped(self):
        gate = Gate("cz", (0, 1)).remapped({0: 5, 1: 7})
        assert gate.qubits == (5, 7)

    def test_convenience_constructors(self):
        assert u3(1.0, 2.0, 3.0, 4).name == "u3"
        assert cz(0, 1).qubits == (0, 1)
        assert cx(2, 3).name == "cx"


class TestSingleQubitMatrices:
    def test_hadamard_is_unitary_and_self_inverse(self):
        h = single_qubit_matrix(Gate("h", (0,)))
        assert np.allclose(h @ h, np.eye(2), atol=1e-12)

    def test_x_matrix(self):
        x = single_qubit_matrix(Gate("x", (0,)))
        assert np.allclose(x, [[0, 1], [1, 0]])

    def test_s_squared_is_z(self):
        s = single_qubit_matrix(Gate("s", (0,)))
        z = single_qubit_matrix(Gate("z", (0,)))
        assert np.allclose(s @ s, z)

    def test_t_squared_is_s(self):
        t = single_qubit_matrix(Gate("t", (0,)))
        s = single_qubit_matrix(Gate("s", (0,)))
        assert np.allclose(t @ t, s)

    def test_rz_phase_relation(self):
        rz = single_qubit_matrix(Gate("rz", (0,), (math.pi,)))
        z = single_qubit_matrix(Gate("z", (0,)))
        # Rz(pi) equals Z up to a global phase.
        ratio = rz[0, 0] / z[0, 0]
        assert np.allclose(rz, ratio * z)

    def test_u2_is_u3_special_case(self):
        a = single_qubit_matrix(Gate("u2", (0,), (0.3, 0.7)))
        b = u3_matrix(math.pi / 2, 0.3, 0.7)
        assert np.allclose(a, b)

    def test_two_qubit_gate_rejected(self):
        with pytest.raises(GateError):
            single_qubit_matrix(Gate("cz", (0, 1)))

    def test_unknown_gate_rejected(self):
        with pytest.raises(GateError):
            single_qubit_matrix(Gate("nonsense", (0,)))

    @pytest.mark.parametrize(
        "name", ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg"]
    )
    def test_all_fixed_gates_are_unitary(self, name):
        matrix = single_qubit_matrix(Gate(name, (0,)))
        assert np.allclose(matrix.conj().T @ matrix, np.eye(2), atol=1e-12)


class TestU3Decomposition:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("h", ()),
            ("x", ()),
            ("t", ()),
            ("sdg", ()),
            ("rx", (0.7,)),
            ("ry", (1.3,)),
            ("rz", (-2.1,)),
            ("u3", (0.5, 1.0, -0.75)),
        ],
    )
    def test_roundtrip_named_gates(self, name, params):
        matrix = single_qubit_matrix(Gate(name, (0,), params))
        theta, phi, lam = matrix_to_u3(matrix)
        rebuilt = u3_matrix(theta, phi, lam)
        phase = matrix[np.unravel_index(np.argmax(np.abs(matrix)), (2, 2))]
        rebuilt_ref = rebuilt[np.unravel_index(np.argmax(np.abs(matrix)), (2, 2))]
        assert np.allclose(matrix / phase, rebuilt / rebuilt_ref, atol=1e-9)

    def test_identity_detection(self):
        assert is_identity(np.eye(2))
        assert is_identity(np.exp(1j * 0.4) * np.eye(2))
        assert not is_identity(single_qubit_matrix(Gate("x", (0,))))

    def test_non_unitary_rejected(self):
        with pytest.raises(GateError):
            matrix_to_u3(np.array([[1.0, 2.0], [3.0, 4.0]]))

    def test_wrong_shape_rejected(self):
        with pytest.raises(GateError):
            matrix_to_u3(np.eye(3))

    @settings(max_examples=50, deadline=None)
    @given(
        theta=st.floats(0, math.pi),
        phi=st.floats(-math.pi, math.pi),
        lam=st.floats(-math.pi, math.pi),
    )
    def test_roundtrip_random_angles(self, theta, phi, lam):
        matrix = u3_matrix(theta, phi, lam)
        angles = matrix_to_u3(matrix)
        rebuilt = u3_matrix(*angles)
        # Compare up to global phase by normalising on the largest entry.
        index = np.unravel_index(np.argmax(np.abs(matrix)), (2, 2))
        assert abs(matrix[index]) > 1e-8
        assert np.allclose(matrix / matrix[index], rebuilt / rebuilt[index], atol=1e-7)

    @settings(max_examples=30, deadline=None)
    @given(data=st.lists(st.floats(-3, 3), min_size=4, max_size=4))
    def test_random_product_roundtrip(self, data):
        a = u3_matrix(abs(data[0]), data[1], data[2])
        b = u3_matrix(abs(data[3]), data[1] / 2, data[2] / 2)
        product = a @ b
        angles = matrix_to_u3(product)
        rebuilt = u3_matrix(*angles)
        index = np.unravel_index(np.argmax(np.abs(product)), (2, 2))
        assert np.allclose(
            product / product[index], rebuilt / rebuilt[index], atol=1e-7
        )
