"""Tests for the resilience layer (fault plane, hardened serving, chaos).

Covers the deterministic fault-injection plane (plan serialization and
sampling, firing windows, label matching, the process-global install /
clear lifecycle), the hardened scheduler semantics (deadlines with
queue-cancel, bounded-queue shedding, transient retry with backoff,
draining), the daemon's structured failure modes (deadline / overloaded /
draining errors, graceful degradation, health), the disk cache under
injected IO faults (read errors, torn writes + quarantine, silent
corruption caught by the shard checksum), worker-pool self-healing when a
worker process dies mid-batch, and the chaos harness end to end: clean
sampled plans, the deliberately unhardened result-tamper point caught by
the bit-identity invariant, plan minimization, and bundle replay.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.api import compile_many
from repro.api.parallel import CompileService, get_worker_pool
from repro.circuits.random import generate
from repro.circuits.scheduling import clear_preprocess_cache
from repro.circuits.synthesis import get_resynthesis_prefix_cache
from repro.core.config import ZACConfig
from repro.core.incremental import clear_prefix_cache
from repro.resilience.chaos import (
    CHAOS_COMPILE_OPTIONS,
    chaos_requests,
    minimize_plan,
    replay_chaos_bundle,
    run_chaos,
    run_chaos_plan,
    stable_summary,
)
from repro.resilience.faults import (
    HARDENED_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    TransientFaultError,
    WorkerCrashError,
    clear_fault_plan,
    fault_plan_active,
    fault_point,
    get_injector,
    install_fault_plan,
    is_transient,
    sample_fault_plan,
)
from repro.serve.client import bundle_requests
from repro.serve.daemon import (
    ServeDaemon,
    degrade_built_options,
    degraded_zac_config,
)
from repro.serve.diskcache import DiskCompileCache
from repro.serve.scheduler import (
    DeadlineExceeded,
    OverloadedError,
    SchedulerDraining,
    ServeScheduler,
)

SA_CONFIG = ZACConfig(sa_iterations=25)


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_fault_plan()
    clear_prefix_cache()
    clear_preprocess_cache()
    get_resynthesis_prefix_cache().clear()
    yield
    clear_fault_plan()
    clear_prefix_cache()
    clear_preprocess_cache()
    get_resynthesis_prefix_cache().clear()


def _circuit(seed=0, n=5, depth=2):
    return generate("brickwork", seed=seed, num_qubits=n, depth=depth).circuit


def run_async(coro):
    return asyncio.run(coro)


def _spec(point="worker.compile", **kwargs):
    kwargs.setdefault("kind", "slow-compile")
    return FaultSpec(point=point, **kwargs)


# ---------------------------------------------------------------------------
# Fault plans: serialization, sampling, validation
# ---------------------------------------------------------------------------


class TestFaultPlanSerialization:
    def test_round_trip_json(self):
        plan = FaultPlan(
            seed=7,
            faults=(
                FaultSpec(kind="slow-compile", point="worker.compile", after=1, count=2, param=0.05),
                FaultSpec(kind="disk-read-error", point="disk.get", match="abc"),
            ),
            name="round-trip",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_save_load(self, tmp_path):
        plan = FaultPlan(seed=3, faults=(_spec(param=0.01),), name="saved")
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_unsupported_schema_rejected(self):
        data = FaultPlan(seed=0).to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            FaultPlan.from_dict(data)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor-strike", point="worker.compile")
        with pytest.raises(ValueError):
            FaultSpec(kind="slow-compile", point="worker.compile", after=-1)
        with pytest.raises(ValueError):
            FaultSpec(kind="slow-compile", point="worker.compile", count=0)

    def test_sample_is_deterministic(self):
        assert sample_fault_plan(123) == sample_fault_plan(123)
        assert sample_fault_plan(123) != sample_fault_plan(124)

    def test_sample_draws_only_hardened_kinds(self):
        for seed in range(40):
            plan = sample_fault_plan(seed)
            assert plan.faults, f"seed {seed} produced an empty plan"
            for spec in plan.faults:
                assert spec.kind in HARDENED_KINDS
                # Without a sentinel dir the crash kind must be excluded:
                # a plan may not demand a sentinel file it cannot have.
                assert spec.kind != "worker-crash-once"

    def test_sample_with_sentinel_dir_wires_the_sentinel(self, tmp_path):
        crash_specs = [
            spec
            for seed in range(40)
            for spec in sample_fault_plan(seed, sentinel_dir=tmp_path).faults
            if spec.kind == "worker-crash-once"
        ]
        assert crash_specs, "no sampled plan drew worker-crash-once in 40 seeds"
        for spec in crash_specs:
            assert str(tmp_path) in str(spec.param)


# ---------------------------------------------------------------------------
# Injector semantics: firing windows, matching, install lifecycle
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_firing_window(self):
        plan = FaultPlan(seed=0, faults=(_spec(after=1, count=2),))
        injector = FaultInjector(plan)
        fired = [injector.fire("worker.compile") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_match_is_applied_after_hit_counting(self):
        plan = FaultPlan(seed=0, faults=(_spec(after=0, count=2, match="target"),))
        injector = FaultInjector(plan)
        # Hit 0 is in the window but the label does not match; hit 1 matches;
        # hit 2 matches the label but the window [0, 2) has closed.
        assert injector.fire("worker.compile", label="other") is None
        assert injector.fire("worker.compile", label="the-target-one") is not None
        assert injector.fire("worker.compile", label="the-target-one") is None
        assert injector.hits("worker.compile") == 3

    def test_points_count_independently(self):
        plan = FaultPlan(seed=0, faults=(_spec(point="disk.get", kind="disk-read-error"),))
        injector = FaultInjector(plan)
        assert injector.fire("worker.compile") is None
        assert injector.fire("disk.get") is not None
        assert injector.hits("worker.compile") == 1
        assert injector.hits("disk.get") == 1

    def test_fault_point_is_noop_without_plan(self):
        assert get_injector() is None
        assert fault_point("worker.compile") is None

    def test_fault_plan_active_installs_and_clears(self):
        plan = FaultPlan(seed=0, faults=(_spec(kind="compile-transient"),))
        with fault_plan_active(plan) as injector:
            assert get_injector() is injector
            with pytest.raises(TransientFaultError):
                fault_point("worker.compile")
            assert injector.fired
        assert get_injector() is None

    def test_slow_compile_sleeps(self):
        plan = FaultPlan(seed=0, faults=(_spec(param=0.05),))
        with fault_plan_active(plan):
            start = time.monotonic()
            spec = fault_point("worker.compile")
            elapsed = time.monotonic() - start
        assert spec is not None and spec.kind == "slow-compile"
        assert elapsed >= 0.04

    def test_disk_kinds_raise_oserror(self):
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(kind="disk-read-error", point="disk.get"),)
        )
        with fault_plan_active(plan):
            with pytest.raises(OSError, match="disk-read-error"):
                fault_point("disk.get")

    def test_site_specific_kinds_are_returned_not_applied(self):
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(kind="result-tamper", point="daemon.result"),)
        )
        with fault_plan_active(plan):
            spec = fault_point("daemon.result")
        assert spec is not None and spec.kind == "result-tamper"

    def test_clear_silences_env_plan(self, tmp_path, monkeypatch):
        path = FaultPlan(seed=1, faults=(_spec(),)).save(tmp_path / "plan.json")
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        install_fault_plan(FaultPlan(seed=2))
        clear_fault_plan()
        # An explicit clear must win over the env bootstrap for the rest of
        # the process -- tests would otherwise resurrect the plan.
        assert get_injector() is None


# ---------------------------------------------------------------------------
# Retry policy / transience classification
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_retries=5, base_delay_s=0.1, max_delay_s=0.3, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in range(4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_bounded(self):
        import random

        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0, jitter=0.5)
        rng = random.Random(0)
        for attempt in range(3):
            base = min(1.0, 0.1 * 2**attempt)
            delay = policy.delay(attempt, rng)
            assert base <= delay <= base * 1.5

    def test_is_transient(self):
        from concurrent.futures.process import BrokenProcessPool

        assert is_transient(TransientFaultError("blip"))
        assert is_transient(BrokenProcessPool("worker died"))
        assert not is_transient(WorkerCrashError("budget exhausted"))
        assert not is_transient(ValueError("bad input"))


# ---------------------------------------------------------------------------
# Scheduler hardening: deadlines, shedding, retry, draining
# ---------------------------------------------------------------------------


class TestSchedulerResilience:
    def test_max_queue_must_be_positive(self):
        with pytest.raises(ValueError):
            ServeScheduler(max_queue=0)

    def test_queued_item_cancelled_at_deadline(self):
        async def scenario():
            scheduler = ServeScheduler(workers=1)
            scheduler.start()
            release = threading.Event()
            blocker = asyncio.ensure_future(
                scheduler.submit("slow", lambda: release.wait(10) and "slow-done")
            )
            await asyncio.sleep(0.05)  # the worker picks up the blocker
            with pytest.raises(DeadlineExceeded):
                await scheduler.submit("queued", lambda: "never", deadline_s=0.05)
            release.set()
            result, coalesced = await blocker
            stats = scheduler.stats()
            await scheduler.stop()
            return result, coalesced, stats

        result, coalesced, stats = run_async(scenario())
        assert result == "slow-done" and not coalesced
        assert stats["deadline_timeouts"] == 1
        # The poisoned item never executed: only the blocker ran.
        assert stats["executed"] == 1

    def test_started_item_deadline_raises_without_cancelling_the_thunk(self):
        async def scenario():
            scheduler = ServeScheduler(workers=1)
            scheduler.start()
            release = threading.Event()
            with pytest.raises(DeadlineExceeded):
                await scheduler.submit(
                    "running", lambda: release.wait(10) and "late", deadline_s=0.05
                )
            release.set()
            await scheduler.stop()
            return scheduler.stats()

        stats = run_async(scenario())
        assert stats["deadline_timeouts"] == 1
        assert stats["executed"] == 1  # the thunk still ran to completion

    def test_overload_shedding(self):
        async def scenario():
            scheduler = ServeScheduler(workers=1, max_queue=1)
            scheduler.start()
            release = threading.Event()
            blocker = asyncio.ensure_future(
                scheduler.submit("blocker", lambda: release.wait(10) and "done")
            )
            await asyncio.sleep(0.05)
            queued = asyncio.ensure_future(scheduler.submit("queued", lambda: "ok"))
            await asyncio.sleep(0.02)
            with pytest.raises(OverloadedError) as excinfo:
                await scheduler.submit("shed-me", lambda: "never")
            release.set()
            await asyncio.gather(blocker, queued)
            stats = scheduler.stats()
            await scheduler.stop()
            return excinfo.value, stats

        error, stats = run_async(scenario())
        assert error.queued == 1
        assert error.retry_after_s > 0
        assert stats["shed"] == 1
        assert stats["executed"] == 2  # the shed item never ran

    def test_transient_failure_retried(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise TransientFaultError("blip")
            return "recovered"

        async def scenario():
            scheduler = ServeScheduler(
                workers=1, retry_policy=RetryPolicy(max_retries=2, base_delay_s=0.001)
            )
            scheduler.start()
            result, _ = await scheduler.submit("flaky", flaky)
            stats = scheduler.stats()
            await scheduler.stop()
            return result, stats

        result, stats = run_async(scenario())
        assert result == "recovered"
        assert len(attempts) == 2
        assert stats["retried"] == 1

    def test_retry_budget_is_bounded(self):
        attempts = []

        def hopeless():
            attempts.append(1)
            raise TransientFaultError("always")

        async def scenario():
            scheduler = ServeScheduler(
                workers=1, retry_policy=RetryPolicy(max_retries=1, base_delay_s=0.001)
            )
            scheduler.start()
            with pytest.raises(TransientFaultError):
                await scheduler.submit("hopeless", hopeless)
            await scheduler.stop()

        run_async(scenario())
        assert len(attempts) == 2  # first try + one retry, then give up

    def test_non_transient_failure_not_retried(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise ValueError("deterministic bug")

        async def scenario():
            scheduler = ServeScheduler(workers=1)
            scheduler.start()
            with pytest.raises(ValueError):
                await scheduler.submit("broken", broken)
            await scheduler.stop()

        run_async(scenario())
        assert len(attempts) == 1

    def test_submit_after_stop_raises_draining(self):
        async def scenario():
            scheduler = ServeScheduler(workers=1)
            scheduler.start()
            await scheduler.submit("one", lambda: 1)
            await scheduler.stop()
            with pytest.raises(SchedulerDraining):
                await scheduler.submit("late", lambda: 2)

        run_async(scenario())


# ---------------------------------------------------------------------------
# Daemon failure modes: structured errors, degradation, health
# ---------------------------------------------------------------------------


async def _with_daemon(daemon, body):
    daemon.scheduler.start()
    try:
        return await body(daemon)
    finally:
        await daemon.scheduler.stop()


def _compile_request(request_id, circuit_seed=0, sa_iterations=25, **params):
    descriptor = generate(
        "brickwork", seed=circuit_seed, num_qubits=4, depth=2
    ).descriptor.to_dict()
    return {
        "id": request_id,
        "method": "compile",
        "params": {
            "circuit": {"descriptor": descriptor},
            "backend": "zac",
            "options": {"config": {"sa_iterations": sa_iterations}},
            **params,
        },
    }


class TestDaemonResilience:
    def test_health_reports_status_and_counters(self, tmp_path):
        async def body(daemon):
            return await daemon.handle({"id": 1, "method": "health"})

        daemon = ServeDaemon(cache_dir=str(tmp_path))
        response = run_async(_with_daemon(daemon, body))
        assert response["ok"]
        result = response["result"]
        assert result["status"] == "ok"
        assert "queue_depth" in result["scheduler"]
        assert "quarantined" in result["disk"]

    def test_health_reports_draining(self):
        async def body(daemon):
            await daemon.handle({"id": 1, "method": "shutdown"})
            return await daemon.handle({"id": 2, "method": "health"})

        response = run_async(_with_daemon(ServeDaemon(), body))
        assert response["result"]["status"] == "draining"

    def test_deadline_returns_structured_error(self):
        async def body(daemon):
            return await daemon.handle(
                _compile_request(1, sa_iterations=4000, deadline_ms=1)
            )

        response = run_async(_with_daemon(ServeDaemon(), body))
        assert not response["ok"]
        assert response["error"]["kind"] == "deadline"

    def test_overloaded_maps_to_structured_error(self):
        async def body(daemon):
            async def shedding_submit(*args, **kwargs):
                raise OverloadedError(3, 0.5)

            daemon.scheduler.submit = shedding_submit
            return await daemon.handle(_compile_request(1))

        response = run_async(_with_daemon(ServeDaemon(), body))
        assert not response["ok"]
        assert response["error"]["kind"] == "overloaded"
        assert response["error"]["retry_after_s"] == 0.5

    def test_draining_maps_to_structured_error(self):
        async def body(daemon):
            async def draining_submit(*args, **kwargs):
                raise SchedulerDraining("scheduler is draining")

            daemon.scheduler.submit = draining_submit
            return await daemon.handle(_compile_request(1))

        response = run_async(_with_daemon(ServeDaemon(), body))
        assert not response["ok"]
        assert response["error"]["kind"] == "draining"

    def test_degraded_fallback_under_deadline_pressure(self):
        # degrade_depth=0 makes every deadline'd request count as "under
        # pressure", so the degrade branch is deterministic in a unit test.
        async def body(daemon):
            return await daemon.handle(_compile_request(1, deadline_ms=60000))

        daemon = ServeDaemon(degrade_depth=0)
        response = run_async(_with_daemon(daemon, body))
        assert response["ok"]
        result = response["result"]
        assert result["served"] == "degraded"
        assert result["degraded"] is True
        assert daemon.degraded_served == 1

    def test_degraded_cache_serves_warm_slim_result(self):
        async def body(daemon):
            first = await daemon.handle(_compile_request(1))
            second = await daemon.handle(_compile_request(2, deadline_ms=60000))
            return first, second

        daemon = ServeDaemon(degrade_depth=0)
        first, second = run_async(_with_daemon(daemon, body))
        assert first["ok"] and second["ok"]
        assert first["result"]["served"] == "compiled"
        assert second["result"]["served"] == "degraded-cache"
        assert second["result"]["degraded"] is True
        # A degraded-cache hit serves the *full-options* compile verbatim.
        assert second["result"]["summary"] == first["result"]["summary"]

    def test_degraded_config_is_deterministic_and_cheap(self):
        degraded = degraded_zac_config(ZACConfig(sa_iterations=4000))
        assert degraded.sa_iterations == 25
        assert not degraded.use_sa_initial_placement
        assert not degraded.incremental
        assert not degraded.warm_start
        options, flagged = degrade_built_options("zac", {"config": ZACConfig()})
        assert flagged and options["config"].sa_iterations == 25
        options, flagged = degrade_built_options("sc", {"opt_level": 2})
        assert not flagged and options == {"opt_level": 2}

    def test_unknown_method_is_structured(self):
        async def body(daemon):
            return await daemon.handle({"id": 9, "method": "frobnicate"})

        response = run_async(_with_daemon(ServeDaemon(), body))
        assert not response["ok"]
        assert "unknown method" in response["error"]["message"]


# ---------------------------------------------------------------------------
# Disk cache under injected IO faults
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def slim_result():
    service = CompileService()
    return service.compile_batch(
        [_circuit(seed=11, n=4)],
        "zac",
        None,
        parallel=0,
        validate=False,
        keep_programs=False,
        config=SA_CONFIG,
    )[0]


class TestDiskCacheFaults:
    KEY = ("resilience-test-key",)

    def test_read_error_served_as_miss_without_unlink(self, tmp_path, slim_result):
        cache = DiskCompileCache(tmp_path)
        cache.put(self.KEY, slim_result)
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(kind="disk-read-error", point="disk.get"),)
        )
        with fault_plan_active(plan):
            assert cache.get(self.KEY) is None  # the injected blip
            assert cache.get(self.KEY) is not None  # window closed: shard intact
        assert cache.io_errors == 1
        digest = cache.digests()[0]
        assert cache.path_for(digest).exists()

    def test_torn_write_quarantined_on_restart(self, tmp_path, slim_result):
        cache = DiskCompileCache(tmp_path)
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(kind="disk-torn-write", point="disk.replace"),)
        )
        with fault_plan_active(plan):
            cache.put(self.KEY, slim_result)
        assert cache.torn_writes == 1
        remnants = list(tmp_path.glob("??/*.tmp"))
        assert len(remnants) == 1
        assert cache.get(self.KEY) is None  # the replace never happened

        restarted = DiskCompileCache(tmp_path)
        assert restarted.quarantined == 1
        assert not list(tmp_path.glob("??/*.tmp"))
        assert list((tmp_path / "quarantine").iterdir())
        # The cache works normally after the sweep.
        restarted.put(self.KEY, slim_result)
        assert restarted.get(self.KEY) is not None

    def test_silent_corruption_caught_by_checksum(self, tmp_path, slim_result):
        cache = DiskCompileCache(tmp_path)
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(kind="disk-corrupt", point="disk.replace"),)
        )
        with fault_plan_active(plan):
            cache.put(self.KEY, slim_result)
        with pytest.warns(RuntimeWarning, match="corrupted"):
            assert cache.get(self.KEY) is None
        # The damaged shard is dropped, not served and not retried forever.
        digest_path = list(tmp_path.glob("??/*.jsonl"))
        assert not digest_path

    def test_truncated_shard_is_dropped(self, tmp_path, slim_result):
        cache = DiskCompileCache(tmp_path)
        cache.put(self.KEY, slim_result)
        path = cache.path_for(cache.digests()[0])
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        fresh = DiskCompileCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupted"):
            assert fresh.get(self.KEY) is None
        assert not path.exists()


# ---------------------------------------------------------------------------
# Worker death mid-batch (compile_many / the warm pool)
# ---------------------------------------------------------------------------


@pytest.fixture
def fresh_pool():
    # Pool workers inherit the fault plan active at fork: force a re-fork so
    # the plan installed by the test is what the workers see, and again on
    # the way out so later tests get clean workers.
    get_worker_pool().shutdown()
    yield
    get_worker_pool().shutdown()


class TestWorkerDeathMidBatch:
    def _compile(self, circuits, **kwargs):
        return compile_many(
            circuits,
            "zac",
            parallel=2,
            validate=False,
            keep_programs=False,
            config=SA_CONFIG,
            **kwargs,
        )

    def test_pool_heals_after_one_crash(self, tmp_path, fresh_pool):
        sentinel = tmp_path / "crash.sentinel"
        plan = FaultPlan(
            seed=1,
            faults=(
                FaultSpec(
                    kind="worker-crash-once",
                    point="worker.compile",
                    after=0,
                    count=1,
                    param=str(sentinel),
                ),
            ),
            name="crash-once",
        )
        circuits = [_circuit(seed=seed, n=4) for seed in range(4)]
        with fault_plan_active(plan):
            results = self._compile(circuits, return_exceptions=True)
        assert sentinel.exists()  # the crash really fired
        assert len(results) == 4
        for result in results:
            assert not isinstance(result, Exception)
        assert [r.circuit_name for r in results] == [c.name for c in circuits]

    def test_persistent_crasher_isolated_to_its_slot(self, fresh_pool):
        circuits = [_circuit(seed=seed, n=4) for seed in range(4)]
        plan = FaultPlan(
            seed=2,
            faults=(
                FaultSpec(
                    kind="worker-crash",
                    point="worker.compile",
                    after=0,
                    count=999,
                    match=circuits[2].name,
                ),
            ),
            name="persistent-crash",
        )
        with fault_plan_active(plan):
            results = self._compile(circuits, return_exceptions=True)
        assert isinstance(results[2], WorkerCrashError)
        for index in (0, 1, 3):
            assert not isinstance(results[index], Exception), f"slot {index} died too"

    def test_persistent_crasher_raises_without_return_exceptions(self, fresh_pool):
        circuits = [_circuit(seed=seed, n=4) for seed in range(4)]
        plan = FaultPlan(
            seed=3,
            faults=(
                FaultSpec(
                    kind="worker-crash",
                    point="worker.compile",
                    after=0,
                    count=999,
                    match=circuits[1].name,
                ),
            ),
            name="persistent-crash-raise",
        )
        with fault_plan_active(plan):
            with pytest.raises(WorkerCrashError):
                self._compile(circuits, return_exceptions=False)


# ---------------------------------------------------------------------------
# Chaos harness: storms, invariants, minimization, replay
# ---------------------------------------------------------------------------


class TestChaosHarness:
    def test_requests_are_deterministic(self):
        assert chaos_requests(5) == chaos_requests(5)
        requests, metas = chaos_requests(5, num_requests=8)
        assert len(requests) == len(metas) == 8
        assert requests[0]["method"] == "compile"  # the storm always compiles
        assert metas[0] is not None

    def test_stable_summary_strips_wall_clock(self):
        summary = {
            "fidelity": 0.5,
            "compile_time_s": 1.2,
            "time_place_s": 0.3,
            "two_qubit_gates": 7,
        }
        assert stable_summary(summary) == {"fidelity": 0.5, "two_qubit_gates": 7}

    def test_clean_plan_passes_all_invariants(self, tmp_path):
        plan = sample_fault_plan(17)
        outcome = run_chaos_plan(
            plan, cache_dir=str(tmp_path / "cache"), num_requests=6, watchdog_s=60.0
        )
        assert outcome.ok, outcome.violations
        assert outcome.checks["terminal"] == 6
        assert outcome.checks.get("bit-identical", 0) >= 1

    def test_result_tamper_caught_minimized_and_replayed(self, tmp_path):
        # The deliberately unhardened daemon.result point: the harness MUST
        # flag it (bit-identity), shrink the plan to the tampering fault
        # alone, and reproduce the violation from the written bundle.
        plan = FaultPlan(
            seed=0,
            faults=(
                FaultSpec(
                    kind="slow-compile", point="worker.compile", after=0, count=1, param=0.01
                ),
                FaultSpec(kind="result-tamper", point="daemon.result", after=0, count=4),
            ),
            name="tamper-regression",
        )
        report = run_chaos(
            seed=0,
            out_dir=str(tmp_path),
            num_requests=6,
            watchdog_s=60.0,
            minimize=True,
            plans=[plan],
        )
        assert not report.ok
        failures = [f for f in report.failures if f.check == "chaos:bit-identical"]
        assert failures, [f.check for f in report.failures]
        failure = failures[0]
        assert failure.backend == "daemon"
        assert failure.extra["original_num_faults"] == 2
        assert failure.extra["minimized_num_faults"] == 1
        minimized = FaultPlan.from_dict(failure.extra["fault_plan"])
        assert [spec.kind for spec in minimized.faults] == ["result-tamper"]

        bundle = json.loads((tmp_path / "fuzz_fail_000.json").read_text())
        reproduced, message = replay_chaos_bundle(bundle)
        assert reproduced, message
        assert "bit-identical" in message

    def test_minimize_keeps_a_failing_single_fault(self):
        plan = FaultPlan(
            seed=0,
            faults=(
                _spec(param=0.01),
                FaultSpec(kind="disk-read-error", point="disk.get"),
                FaultSpec(kind="result-tamper", point="daemon.result"),
            ),
            name="shrink-me",
        )
        minimized = minimize_plan(
            plan, lambda p: any(s.kind == "result-tamper" for s in p.faults)
        )
        assert [spec.kind for spec in minimized.faults] == ["result-tamper"]
        assert minimized.name == "shrink-me-min"
        assert minimized.seed == plan.seed

    def test_replay_rejects_bundle_without_plan(self):
        with pytest.raises(ValueError, match="fault_plan"):
            replay_chaos_bundle({"check": "chaos:terminal", "extra": {}})


# ---------------------------------------------------------------------------
# Client plumbing: chaos bundles are skipped by the replay workload
# ---------------------------------------------------------------------------


class TestBundleRequests:
    def test_chaos_bundles_are_skipped(self, tmp_path):
        compile_bundle = {
            "kind": "fuzz-repro",
            "backend": "zac",
            "circuit_qasm": 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\ncx q[0],q[1];\n',
            "profile": "default",
        }
        chaos_bundle = {
            "kind": "fuzz-repro",
            "backend": "daemon",
            "check": "chaos:bit-identical",
            "extra": {"fault_plan": FaultPlan(seed=0).to_dict()},
        }
        (tmp_path / "fuzz_fail_000.json").write_text(json.dumps(chaos_bundle))
        (tmp_path / "fuzz_fail_001.json").write_text(json.dumps(compile_bundle))
        requests = bundle_requests(tmp_path)
        # Only the compilable bundle becomes daemon traffic; the chaos
        # bundle has no circuit and must not poison the replay workload.
        assert len(requests) == 1
        assert requests[0]["params"]["backend"] == "zac"
