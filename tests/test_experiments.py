"""Tests for the experiment harnesses (run on small circuit subsets)."""

import pytest

from repro.experiments import (
    ABLATION_CONFIGS,
    benchmark_circuits,
    default_compilers,
    format_table,
    geometric_mean,
    run_compiler,
    run_matrix,
    to_csv,
)
from repro.experiments.ablation import ablation_table, run_ablation, stepwise_improvements
from repro.experiments.aod_sweep import aod_gains, run_aod_sweep
from repro.experiments.architecture_comparison import (
    fidelity_table,
    improvement_summary,
    run_architecture_comparison,
)
from repro.experiments.duration_comparison import duration_table, run_duration_comparison
from repro.experiments.fidelity_breakdown import breakdown_table, run_fidelity_breakdown
from repro.experiments.multi_zone import improvement, run_multi_zone
from repro.experiments.optimality import optimality_gaps, run_optimality
from repro.experiments.scalability import run_scalability, scalability_table
from repro.experiments.table2 import run_table2
from repro.experiments.zair_stats import run_zair_stats

SMALL = ["bv_n14", "ghz_n23"]


class TestHarness:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 1.0]) > 0.0

    def test_benchmark_circuits_default_full_set(self):
        assert len(benchmark_circuits()) == 17
        assert [name for name, _ in benchmark_circuits(SMALL)] == SMALL

    def test_default_compilers_labels(self):
        labels = set(default_compilers())
        assert {"Zoned-ZAC", "Zoned-NALAC", "Monolithic-Enola", "Monolithic-Atomique"} <= labels

    def test_run_compiler_record(self):
        from repro.arch import reference_zoned_architecture
        from repro.core import ZACCompiler

        name, circuit = benchmark_circuits(["bv_n14"])[0]
        record = run_compiler(ZACCompiler(reference_zoned_architecture()), circuit)
        assert record.circuit == "bv_n14"
        assert 0 < record.fidelity <= 1
        assert record.num_2q_gates == 13

    def test_phase_timings_in_summary(self):
        from repro.arch import reference_zoned_architecture
        from repro.core import ZACCompiler

        _, circuit = benchmark_circuits(["bv_n14"])[0]
        result = ZACCompiler(reference_zoned_architecture()).compile(circuit)
        summary = result.summary()
        phase_keys = [f"time_{p}_s" for p in result.PHASES]
        assert all(key in summary for key in phase_keys)
        assert all(summary[key] >= 0.0 for key in phase_keys)
        # The instrumented phases account for (most of) the compile time.
        assert sum(summary[key] for key in phase_keys) <= summary["compile_time_s"]
        assert summary["time_place_s"] > 0.0

    def test_run_matrix_parallel_matches_serial(self):
        import dataclasses

        compilers = default_compilers(include_superconducting=False)
        serial = run_matrix(SMALL, compilers, parallel=0)
        parallel = run_matrix(SMALL, compilers, parallel=2)
        assert len(serial) == len(parallel) == len(SMALL) * len(compilers)
        for a, b in zip(serial, parallel):
            left, right = dataclasses.asdict(a), dataclasses.asdict(b)
            # Wall-clock differs between processes; everything else must match.
            left.pop("compile_time_s")
            right.pop("compile_time_s")
            assert left == right


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_empty(self):
        assert format_table([]) == "(no data)"

    def test_csv_escaping(self):
        text = to_csv([{"name": "x,y", "value": 1}])
        assert '"x,y"' in text


class TestFigureExperiments:
    def test_fig8_architecture_comparison(self):
        records = run_architecture_comparison(
            SMALL, compilers=default_compilers(include_superconducting=False)
        )
        table = fidelity_table(records)
        assert table[-1]["circuit"] == "GMean"
        ratios = improvement_summary(records)
        # ZAC dominates the monolithic compilers on sequential circuits.
        assert ratios["Monolithic-Enola"] > 1.0
        assert ratios["Monolithic-Atomique"] > 1.0

    def test_fig9_breakdown(self):
        records = run_fidelity_breakdown(["bv_n14"])
        rows = breakdown_table(records)
        zac_rows = [r for r in rows if r["compiler"] == "ZAC" and r["circuit"] == "bv_n14"]
        enola_rows = [r for r in rows if r["compiler"] == "Enola" and r["circuit"] == "bv_n14"]
        assert zac_rows[0]["2q_gate"] > enola_rows[0]["2q_gate"]

    def test_fig10_duration(self):
        records = run_duration_comparison(["bv_n14"])
        rows = duration_table(records)
        assert rows[-1]["circuit"] == "GMean"
        assert all(value > 0 for key, value in rows[0].items() if key != "circuit")

    def test_fig11_ablation(self):
        records = run_ablation(SMALL)
        rows = ablation_table(records)
        assert set(ABLATION_CONFIGS) <= set(rows[0]) - {"circuit"}
        gains = stepwise_improvements(records)
        assert "dynPlace+reuse" in gains

    def test_fig12_scalability(self):
        records = run_scalability(["bv_n14"])
        rows = scalability_table(records)
        assert any(r["compiler"] == "ZAC-SA+dynPlace+reuse" for r in rows)
        assert all(r["mean_compile_time_s"] >= 0 for r in rows)

    def test_fig13_optimality(self):
        rows = run_optimality(SMALL)
        gaps = optimality_gaps(rows)
        for gap in gaps.values():
            assert -1e-6 <= gap < 0.5

    def test_fig14_aod_sweep(self):
        rows = run_aod_sweep(["ising_n42"], aod_counts=(1, 2))
        gains = aod_gains(rows)
        assert gains["2AOD"] >= -1e-6

    def test_table2(self):
        rows = run_table2(SMALL)
        assert {r["platform"] for r in rows} == {"SC", "ZAC"}
        zac_row = next(r for r in rows if r["platform"] == "ZAC")
        assert 0 < zac_row["total"] <= 1

    def test_sec7h_multi_zone(self):
        rows = run_multi_zone("ising_n98")
        stats = improvement(rows)
        assert stats["fidelity_gain"] > 0

    def test_sec9_zair_stats(self):
        rows = run_zair_stats(["bv_n14"])
        gmean_row = rows[-1]
        assert float(gmean_row["zair_per_gate"]) > 0
        assert float(gmean_row["machine_per_gate"]) >= float(gmean_row["zair_per_gate"])
