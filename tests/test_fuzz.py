"""Tests for the cross-backend differential fuzz harness (experiments/fuzz.py)."""

from __future__ import annotations

import json

import pytest

import repro
import repro.api as api
from repro.__main__ import main
from repro.circuits.circuit import QuantumCircuit
from repro.arch.presets import logical_block_architecture
from repro.experiments.fuzz import (
    PROFILES,
    FuzzError,
    _resolve_profile,
    minimize_circuit,
    replay_bundle,
    run_fuzz,
    sample_corpus_workloads,
    sample_workloads,
)
from repro.zair.instructions import QLoc

FAST_BACKENDS = ["enola", "atomique", "sc"]


class BrokenBackend:
    """Enola wrapper that re-introduces a double-occupancy modeling bug.

    Mimics the class of fault PR 3's validation pass caught in NALAC (a qubit
    stacked onto an occupied trap): the emitted program initialises the
    second qubit on top of the first one's trap.
    """

    name = "broken-for-test"

    def __init__(self) -> None:
        self._inner = api.create_backend("enola")

    def compile(self, circuit):
        result = self._inner.compile(circuit)
        init = result.program.instructions[0]
        if len(init.init_locs) >= 2:
            first, second = init.init_locs[0], init.init_locs[1]
            init.init_locs[1] = QLoc(second.qubit, first.slm_id, first.row, first.col)
        return result


@pytest.fixture
def broken_backend():
    api.register_backend(
        "broken-for-test", lambda arch, options: BrokenBackend(), overwrite=True
    )
    try:
        yield "broken-for-test"
    finally:
        api.unregister_backend("broken-for-test")


class TestSampling:
    def test_reproducible_for_fixed_seed(self):
        first = sample_workloads(6, seed=42)
        second = sample_workloads(6, seed=42)
        assert [w.descriptor for w in first] == [w.descriptor for w in second]
        assert [w.circuit.gates for w in first] == [w.circuit.gates for w in second]

    def test_seed_changes_the_sample(self):
        a = sample_workloads(6, seed=1)
        b = sample_workloads(6, seed=2)
        assert [w.descriptor for w in a] != [w.descriptor for w in b]

    def test_budget_must_be_positive(self):
        with pytest.raises(FuzzError):
            sample_workloads(0)


class TestCompileManyReturnExceptions:
    def test_failures_fill_their_slot(self):
        good = repro.generate("brickwork", seed=0, num_qubits=4, depth=2).circuit
        too_big = QuantumCircuit(300, name="too_big")
        too_big.h(0)
        too_big.cz(0, 299)
        outcomes = api.compile_many(
            [good, too_big, good], backend="sc", return_exceptions=True
        )
        assert outcomes[0].program is not None
        assert isinstance(outcomes[1], Exception)
        assert outcomes[2].program is not None

    def test_default_still_raises(self):
        too_big = QuantumCircuit(300, name="too_big")
        too_big.h(0)
        too_big.cz(0, 299)
        with pytest.raises(Exception):
            api.compile_many([too_big], backend="sc")


class TestMinimizeCircuit:
    def test_shrinks_to_the_culprit_gate(self):
        circuit = repro.generate("clifford_t", seed=3, num_qubits=6, depth=6).circuit
        assert len(circuit) > 10

        def failing(candidate):
            return any(g.name == "cz" for g in candidate.gates)

        minimized = minimize_circuit(circuit, failing)
        assert len(minimized) == 1
        assert minimized.gates[0].name == "cz"

    def test_respects_attempt_budget(self):
        circuit = repro.generate("brickwork", seed=0, num_qubits=8, depth=8).circuit
        calls = []

        def failing(candidate):
            calls.append(1)
            return True

        minimize_circuit(circuit, failing, max_attempts=5)
        assert len(calls) <= 5


class TestCleanFuzz:
    def test_clean_run_has_no_failures(self):
        report = run_fuzz(
            budget=3,
            seed=0,
            backends=FAST_BACKENDS,
            check_depth_monotonic=False,
        )
        assert report.ok
        assert report.num_circuits == 3
        assert report.invariant_checks["validation"] == 3 * len(FAST_BACKENDS)
        assert report.invariant_checks["duration-positive"] == 3 * len(FAST_BACKENDS)
        assert report.invariant_checks["determinism"] > 0
        assert report.invariant_checks["legacy-conformance"] > 0
        assert report.circuits_per_s > 0
        assert any("all checks passed" in line for line in report.summary_lines())

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(api.UnknownBackendError):
            run_fuzz(budget=1, backends=["nope"])


class TestInjectedFault:
    def test_fault_is_caught_minimized_and_replayable(self, broken_backend, tmp_path):
        report = run_fuzz(
            budget=3,
            seed=1,
            backends=[broken_backend],
            out_dir=str(tmp_path),
            check_depth_monotonic=False,
            check_determinism=False,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.check == "validation:trap-occupancy"
        assert "two qubits" in failure.message
        # Bisection shrank the reproducer.
        assert failure.minimized_num_gates < failure.original_num_gates
        assert failure.minimized_num_gates <= 3
        # The bundle is on disk and replayable.
        assert failure.bundle_path is not None
        bundle = json.loads((tmp_path / "fuzz_fail_000.json").read_text())
        assert bundle["kind"] == "fuzz-repro"
        assert bundle["check"] == "validation:trap-occupancy"
        assert bundle["descriptor"]["generator"]
        assert "qreg" in bundle["circuit_qasm"]
        reproduced, message = replay_bundle(failure.bundle_path)
        assert reproduced
        assert "trap-occupancy" in message

    def test_replay_reports_fixed_bug_as_not_reproduced(self, broken_backend, tmp_path):
        report = run_fuzz(
            budget=1,
            seed=1,
            backends=[broken_backend],
            out_dir=str(tmp_path),
            check_depth_monotonic=False,
            check_determinism=False,
        )
        path = report.failures[0].bundle_path
        # "Fix" the bug by replaying against the healthy backend.
        bundle = json.loads(open(path).read())
        bundle["backend"] = "enola"
        with open(path, "w") as handle:
            json.dump(bundle, handle)
        reproduced, _ = replay_bundle(path)
        assert not reproduced

    def test_depth_monotonic_replay_uses_recorded_shallower_rung(self, tmp_path):
        """Replay compares the exact rungs the run compared, not a halved depth."""
        shallow = {"generator": "brickwork", "seed": 5, "params": {"num_qubits": 4, "depth": 3}}
        deep = {"generator": "brickwork", "seed": 5, "params": {"num_qubits": 4, "depth": 5}}
        bundle = {
            "kind": "fuzz-repro",
            "schema": 1,
            "check": "invariant:depth-monotonic",
            "backend": "enola",
            "message": "synthetic",
            "descriptor": deep,
            "extra": {"shallower": shallow},
        }
        path = tmp_path / "ladder.json"
        path.write_text(json.dumps(bundle))
        reproduced, message = replay_bundle(str(path))
        # The invariant holds on healthy code, so the failure must not reproduce.
        assert not reproduced
        assert "monotone" in message

    def test_replay_rejects_non_bundles(self, tmp_path):
        path = tmp_path / "not_a_bundle.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(FuzzError):
            replay_bundle(str(path))


class TestProfiles:
    def test_cli_selectable_profiles_exist(self):
        assert set(PROFILES) == {"default", "throughput", "incremental", "ftqc", "corpus"}
        for name, profile in PROFILES.items():
            assert profile.name == name

    def test_unknown_profile_raises(self):
        with pytest.raises(FuzzError, match="unknown fuzz profile"):
            run_fuzz(budget=1, profile="nope")

    def test_ftqc_profile_shape(self):
        profile = _resolve_profile("ftqc")
        assert profile.backends == ("zac", "nalac", "ideal")
        assert profile.generators == ("ftqc_hiqp", "ftqc_transversal")
        assert profile.ftqc
        arch = profile.arch_factory()
        assert arch.num_storage_traps >= 64

    def test_corpus_profile_shape(self):
        profile = _resolve_profile("corpus")
        assert profile.corpus
        assert not profile.check_depth_monotonic
        assert profile.ladder_generators == ()

    def test_default_sweep_excludes_ftqc_generators(self):
        workloads = sample_workloads(30, seed=0)
        assert all(
            not w.descriptor.generator.startswith("ftqc_") for w in workloads
        )


class TestCorpusSampling:
    def test_reproducible_for_fixed_seed(self):
        first = sample_corpus_workloads(5, seed=3)
        second = sample_corpus_workloads(5, seed=3)
        assert [w.descriptor for w in first] == [w.descriptor for w in second]
        assert [w.circuit.gates for w in first] == [w.circuit.gates for w in second]

    def test_descriptor_records_the_source_file(self):
        for workload in sample_corpus_workloads(5, seed=1):
            assert workload.descriptor.generator == "corpus"
            assert workload.descriptor.params["file"].endswith(".qasm")

    def test_budget_must_be_positive(self):
        with pytest.raises(FuzzError):
            sample_corpus_workloads(0)


class TestProfileCleanRuns:
    def test_ftqc_profile_clean_run(self):
        report = run_fuzz(budget=3, seed=0, profile="ftqc")
        assert report.ok, [f.message for f in report.failures]
        assert report.backends == ["zac", "nalac", "ideal"]
        assert report.invariant_checks["ftqc-correspondence"] == 3 * 3
        assert report.invariant_checks["ftqc-lowering-determinism"] == 3
        assert report.invariant_checks["validation"] == 3 * 3
        assert report.invariant_checks["ideal-dominates"] == 3

    def test_corpus_profile_clean_run(self):
        report = run_fuzz(
            budget=4, seed=0, profile="corpus", backends=["zac", "ideal"]
        )
        assert report.ok, [f.message for f in report.failures]
        assert report.num_circuits == 4
        assert report.invariant_checks["validation"] == 4 * 2
        # fixed files offer no depth-prefix guarantee: no ladder ran
        assert "depth-monotonic" not in report.invariant_checks


class BrokenFTQCBackend:
    """NALAC wrapper re-introducing the double-occupancy bug at block level.

    Same fault family as :class:`BrokenBackend`, but injected under the
    ``ftqc`` profile: the second *code block* is initialised onto the first
    block's slot of the logical architecture.
    """

    name = "broken-ftqc"

    def __init__(self, arch) -> None:
        self._inner = api.create_backend("nalac", arch=arch)

    def compile(self, circuit):
        result = self._inner.compile(circuit)
        init = result.program.instructions[0]
        if len(init.init_locs) >= 2:
            first, second = init.init_locs[0], init.init_locs[1]
            init.init_locs[1] = QLoc(second.qubit, first.slm_id, first.row, first.col)
        return result


@pytest.fixture
def broken_ftqc_backend():
    api.register_backend(
        "broken-ftqc", lambda arch, options: BrokenFTQCBackend(arch), overwrite=True
    )
    try:
        yield "broken-ftqc"
    finally:
        api.unregister_backend("broken-ftqc")


class TestFTQCInjectedFault:
    def test_block_level_fault_is_caught_minimized_and_replayable(
        self, broken_ftqc_backend, tmp_path
    ):
        report = run_fuzz(
            budget=2,
            seed=1,
            profile="ftqc",
            backends=[broken_ftqc_backend],
            out_dir=str(tmp_path),
            check_determinism=False,
            check_legacy=False,
            check_depth_monotonic=False,
        )
        assert not report.ok
        failure = report.failures[0]
        assert failure.check == "validation:trap-occupancy"
        assert failure.profile == "ftqc"
        assert failure.minimized_num_gates < failure.original_num_gates
        bundle = json.loads(open(failure.bundle_path).read())
        assert bundle["profile"] == "ftqc"
        assert bundle["descriptor"]["generator"].startswith("ftqc_")
        reproduced, message = replay_bundle(failure.bundle_path)
        assert reproduced
        assert "trap-occupancy" in message


class TestCLI:
    def test_fuzz_cli_clean_run(self, capsys):
        code = main(
            ["fuzz", "--budget", "1", "--seed", "0", "--backend", "enola,atomique"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all checks passed" in out

    def test_fuzz_cli_failure_exit_code_and_replay(
        self, broken_backend, tmp_path, capsys
    ):
        code = main(
            [
                "fuzz",
                "--budget",
                "1",
                "--seed",
                "1",
                "--backend",
                broken_backend,
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "validation:trap-occupancy" in out
        bundle = next(tmp_path.glob("fuzz_fail_*.json"))
        code = main(["fuzz", "--replay", str(bundle)])
        assert code == 1
        assert "REPRODUCED" in capsys.readouterr().out

    def test_fuzz_cli_ftqc_profile(self, capsys):
        code = main(["fuzz", "--budget", "1", "--seed", "0", "--profile", "ftqc"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all checks passed" in out
        assert "ftqc-correspondence" in out

    def test_fuzz_cli_corpus_profile(self, capsys):
        code = main(
            [
                "fuzz",
                "--budget", "2",
                "--seed", "0",
                "--profile", "corpus",
                "--backend", "zac,ideal",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all checks passed" in out

    def test_fuzz_cli_rejects_unknown_backend(self):
        with pytest.raises(SystemExit, match="unknown backend"):
            main(["fuzz", "--budget", "1", "--backend", "nope"])
