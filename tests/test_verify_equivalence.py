"""Fast-vs-reference equivalence for the vectorized verify path.

The columnar (vectorized) interpreter and validator must be observationally
identical to the per-instruction reference oracles:

* on every backend's emitted program for generated workloads, the fast
  interpreter reproduces the reference metrics and fidelity (bit-identical
  counts and identically ordered float accumulations, 1e-12 otherwise) and
  the fast validator accepts exactly what the reference accepts;
* mutated programs must be rejected with the *same* machine-readable
  ``check`` tag through both paths;
* the linear-time staging scheduler emits exactly the reference stages, and
  preprocessing (which the content cache assumes is pure) is deterministic.

Workloads are drawn by ``hypothesis`` over the seeded generators of
``circuits/random.py``.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.api as api
from repro.arch.presets import reference_zoned_architecture
from repro.circuits.random import generate, generator_names
from repro.circuits.scheduling import (
    _schedule_stages_fast,
    _schedule_stages_reference,
    clear_preprocess_cache,
    preprocess,
)
from repro.circuits.synthesis import resynthesize
from repro.zair.instructions import (
    FixedGate,
    GateLayerInst,
    InitInst,
    QLoc,
    RearrangeJob,
)
from repro.zair.interpret import interpret_program, interpret_program_reference
from repro.zair.program import ZAIRProgram
from repro.zair.validation import (
    ValidationError,
    validate_program,
    validate_program_reference,
)

BACKENDS = api.available_backends()

workload_strategy = st.tuples(
    st.sampled_from(sorted(generator_names())),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=4, max_value=10),
    st.integers(min_value=1, max_value=4),
)


def _assert_interpret_equivalent(fast, ref) -> None:
    fm, rm = asdict(fast.metrics), asdict(ref.metrics)
    for field in (
        "num_qubits", "num_1q_gates", "num_2q_gates", "num_excitations",
        "num_transfers", "num_rydberg_stages", "num_movements",
        "num_instructions", "num_epochs",
    ):
        assert fm[field] == rm[field], field
    assert fm["duration_us"] == pytest.approx(rm["duration_us"], rel=1e-12)
    assert fm["total_move_distance_um"] == pytest.approx(
        rm["total_move_distance_um"], rel=1e-12
    )
    assert set(fm["qubit_busy_us"]) == set(rm["qubit_busy_us"])
    for qubit, busy in rm["qubit_busy_us"].items():
        assert fm["qubit_busy_us"][qubit] == pytest.approx(busy, rel=1e-12), qubit
    for name, value in ref.fidelity.as_dict().items():
        assert fast.fidelity.as_dict()[name] == pytest.approx(value, rel=1e-12), name


class TestFastVerifyMatchesReference:
    @settings(max_examples=8, deadline=None)
    @given(workload_strategy)
    def test_all_backends(self, spec):
        generator, seed, num_qubits, depth = spec
        circuit = generate(
            generator, seed=seed, num_qubits=num_qubits, depth=depth
        ).circuit
        for backend in BACKENDS:
            result = api.compile(circuit, backend=backend, validate=False)
            params = api.create_backend(backend).params
            fast = interpret_program(
                result.program, architecture=result.architecture, params=params
            )
            ref = interpret_program_reference(
                result.program, architecture=result.architecture, params=params
            )
            _assert_interpret_equivalent(fast, ref)
            # Both validator paths must accept the emitted program.
            validate_program(result.architecture, result.program, fast=True)
            validate_program_reference(result.architecture, result.program)


def _check_tags(architecture, program) -> tuple[str | None, str | None]:
    """(reference tag, fast tag) raised for ``program`` (None = accepted)."""
    tags = []
    for kwargs in ({"fast": False}, {"fast": True}):
        try:
            validate_program(architecture, program, **kwargs)
            tags.append(None)
        except ValidationError as exc:
            tags.append(exc.check)
    return tuple(tags)


class TestMutationsRaiseSameCheckTag:
    """The negative-path mutations of test_validation_negative, both paths."""

    @pytest.fixture(scope="class")
    def arch(self):
        return reference_zoned_architecture()

    @pytest.fixture(scope="class")
    def zac_result(self):
        return api.compile("bv_n14", backend="zac")

    @pytest.fixture(scope="class")
    def sc_result(self):
        return api.compile("bv_n14", backend="sc")

    def test_init_double_occupancy(self, arch, zac_result):
        program = copy.deepcopy(zac_result.program)
        init = program.instructions[0]
        first, second = init.init_locs[0], init.init_locs[1]
        init.init_locs[1] = QLoc(second.qubit, first.slm_id, first.row, first.col)
        ref, fast = _check_tags(arch, program)
        assert ref == fast == "trap-occupancy"

    def test_crossing_aod_rows(self, arch):
        program = ZAIRProgram(num_qubits=2, architecture_name=arch.name)
        program.instructions.append(
            InitInst(init_locs=[QLoc(0, 0, 0, 0), QLoc(1, 0, 1, 0)])
        )
        program.instructions.append(
            RearrangeJob(
                aod_id=0,
                begin_locs=[QLoc(0, 0, 0, 0), QLoc(1, 0, 1, 0)],
                end_locs=[QLoc(0, 0, 3, 0), QLoc(1, 0, 2, 0)],
            )
        )
        ref, fast = _check_tags(arch, program)
        assert ref == fast == "aod-order"

    def test_dropoff_onto_occupied_trap(self, arch):
        program = ZAIRProgram(num_qubits=2, architecture_name=arch.name)
        program.instructions.append(
            InitInst(init_locs=[QLoc(0, 0, 0, 0), QLoc(1, 0, 5, 5)])
        )
        program.instructions.append(
            RearrangeJob(
                aod_id=0,
                begin_locs=[QLoc(0, 0, 0, 0)],
                end_locs=[QLoc(0, 0, 5, 5)],
            )
        )
        ref, fast = _check_tags(arch, program)
        assert ref == fast == "trap-occupancy"

    def test_out_of_range_qubit_index(self, sc_result):
        program = copy.deepcopy(sc_result.program)
        layer = next(i for i in program.instructions if isinstance(i, GateLayerInst))
        gate = layer.gates[0]
        layer.gates[0] = FixedGate(
            gate.kind,
            (program.num_qubits + 3,) * len(gate.qubits),
            gate.begin_time,
            gate.duration_us,
        )
        ref, fast = _check_tags(None, program)
        assert ref == fast == "index-range"

    def test_bogus_coupling_edge(self, sc_result):
        program = copy.deepcopy(sc_result.program)
        edges = {frozenset(edge) for edge in program.coupling_edges}
        bogus = next(
            (a, b)
            for a in range(program.num_qubits)
            for b in range(a + 1, program.num_qubits)
            if frozenset((a, b)) not in edges
        )
        layer = next(
            i
            for i in program.instructions
            if isinstance(i, GateLayerInst) and any(g.kind != "1q" for g in i.gates)
        )
        index, gate = next((k, g) for k, g in enumerate(layer.gates) if g.kind != "1q")
        layer.gates[index] = FixedGate(gate.kind, bogus, gate.begin_time, gate.duration_us)
        ref, fast = _check_tags(None, program)
        assert ref == fast == "coupling-edge"

    def test_overlapping_schedule(self):
        program = ZAIRProgram(num_qubits=2)
        program.instructions.append(
            GateLayerInst(
                gates=[
                    FixedGate("1q", (0,), begin_time=0.0, duration_us=1.0),
                    FixedGate("1q", (0,), begin_time=0.5, duration_us=1.0),
                ]
            )
        )
        ref, fast = _check_tags(None, program)
        assert ref == fast == "schedule-overlap"

    def test_mutation_after_deepcopy_never_sees_stale_columns(self, arch, zac_result):
        # The compiled program has a cached columnar view (built during the
        # registry validate); deepcopy must drop it so the mutation is seen.
        assert zac_result.validated
        program = copy.deepcopy(zac_result.program)
        assert not program._columns_cache
        init = program.instructions[0]
        first, second = init.init_locs[0], init.init_locs[1]
        init.init_locs[1] = QLoc(second.qubit, first.slm_id, first.row, first.col)
        with pytest.raises(ValidationError):
            validate_program(arch, program, fast=True)


class TestInterpreterErrorParity:
    def test_missing_architecture_raises_like_reference(self):
        from repro.zair.interpret import InterpreterError

        result = api.compile("bv_n14", backend="zac", validate=False)
        with pytest.raises(InterpreterError) as fast_err:
            interpret_program(result.program, architecture=None)
        with pytest.raises(InterpreterError) as ref_err:
            interpret_program_reference(result.program, architecture=None)
        assert str(fast_err.value) == str(ref_err.value)

    def test_fixed_coupling_rejects_non_layer_instructions(self):
        from repro.fidelity.params import SC_GRID
        from repro.zair.interpret import InterpreterError

        result = api.compile("bv_n14", backend="zac", validate=False)
        with pytest.raises(InterpreterError) as fast_err:
            interpret_program(result.program, params=SC_GRID)
        with pytest.raises(InterpreterError) as ref_err:
            interpret_program_reference(result.program, params=SC_GRID)
        assert str(fast_err.value) == str(ref_err.value)

    def test_columns_cache_is_not_pickled(self):
        import pickle as _pickle

        result = api.compile("bv_n14", backend="zac")
        program = result.program
        program.columns(result.architecture)
        assert program._columns_cache
        clone = _pickle.loads(_pickle.dumps(program))
        assert not clone._columns_cache
        assert clone.num_zair_instructions == program.num_zair_instructions


class TestValidationErrorPickling:
    def test_check_tag_survives_pickling(self):
        error = ValidationError("boom", check="rydberg-site")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.check == "rydberg-site"
        assert str(clone) == "boom"


class TestStaging:
    @settings(max_examples=10, deadline=None)
    @given(workload_strategy)
    def test_fast_scheduler_matches_reference(self, spec):
        generator, seed, num_qubits, depth = spec
        circuit = resynthesize(
            generate(generator, seed=seed, num_qubits=num_qubits, depth=depth).circuit
        )
        fast = _schedule_stages_fast(circuit)
        ref = _schedule_stages_reference(circuit)
        assert len(fast.stages) == len(ref.stages)
        for fast_stage, ref_stage in zip(fast.stages, ref.stages):
            assert type(fast_stage) is type(ref_stage)
            assert fast_stage.gates == ref_stage.gates

    def test_preprocess_is_deterministic_and_cache_transparent(self):
        # The content-addressed staging cache assumes preprocessing is a pure
        # function of the circuit; two cold runs and a cached run must agree.
        circuit = generate("brickwork", seed=11, num_qubits=8, depth=4).circuit
        clear_preprocess_cache()
        cold_a = preprocess(circuit, cache=False)
        cold_b = preprocess(circuit, cache=False)
        cached_first = preprocess(circuit)
        cached_second = preprocess(circuit)
        for other in (cold_b, cached_first, cached_second):
            assert len(cold_a.stages) == len(other.stages)
            for stage_a, stage_b in zip(cold_a.stages, other.stages):
                assert type(stage_a) is type(stage_b)
                assert stage_a.gates == stage_b.gates
        # Cached results are defensive copies: mutating one cannot leak.
        cached_first.stages[0].gates.clear()
        assert preprocess(circuit).stages[0].gates == cold_a.stages[0].gates


class TestSummaryThroughputFields:
    def test_summary_reports_instruction_and_epoch_counts(self):
        result = api.compile("bv_n14", backend="zac")
        summary = result.summary()
        assert summary["num_instructions"] == result.program.num_zair_instructions
        assert summary["num_epochs"] >= 1
        assert summary["time_total_s"] > 0.0
