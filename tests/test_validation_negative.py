"""Negative-path validator tests: mutated known-good programs must be rejected.

Each test takes a valid ZAIR program (compiled by a real backend, or a
minimal hand-built one on the reference architecture), breaks exactly one
hardware invariant, and asserts :func:`validate_program` rejects it with a
pointed message and the matching machine-readable ``check`` tag.
"""

from __future__ import annotations

import copy

import pytest

import repro.api as api
from repro.arch.presets import reference_zoned_architecture
from repro.zair.instructions import FixedGate, GateLayerInst, InitInst, QLoc, RearrangeJob
from repro.zair.program import ZAIRProgram
from repro.zair.validation import ValidationError, validate_program


@pytest.fixture(scope="module")
def arch():
    return reference_zoned_architecture()


@pytest.fixture(scope="module")
def zac_result():
    return api.compile("bv_n14", backend="zac")


@pytest.fixture(scope="module")
def sc_result():
    return api.compile("bv_n14", backend="sc")


def _expect_rejection(architecture, program, match: str, check: str) -> None:
    with pytest.raises(ValidationError, match=match) as excinfo:
        validate_program(architecture, program)
    assert excinfo.value.check == check


class TestLocationPrograms:
    def test_duplicate_trap_occupancy_in_init(self, arch, zac_result):
        program = copy.deepcopy(zac_result.program)
        init = program.instructions[0]
        assert isinstance(init, InitInst) and len(init.init_locs) >= 2
        first, second = init.init_locs[0], init.init_locs[1]
        init.init_locs[1] = QLoc(second.qubit, first.slm_id, first.row, first.col)
        _expect_rejection(
            arch, program, match="initialised with two qubits", check="trap-occupancy"
        )

    def test_crossing_aod_rows(self, arch):
        # Two qubits picked up with q0 below q1 (storage rows 0 and 1) and
        # dropped with the order flipped (rows 3 and 2): their AOD rows cross.
        program = ZAIRProgram(num_qubits=2, architecture_name=arch.name)
        program.instructions.append(
            InitInst(init_locs=[QLoc(0, 0, 0, 0), QLoc(1, 0, 1, 0)])
        )
        program.instructions.append(
            RearrangeJob(
                aod_id=0,
                begin_locs=[QLoc(0, 0, 0, 0), QLoc(1, 0, 1, 0)],
                end_locs=[QLoc(0, 0, 3, 0), QLoc(1, 0, 2, 0)],
            )
        )
        _expect_rejection(arch, program, match="cross in y", check="aod-order")

    def test_dropoff_onto_occupied_trap(self, arch):
        program = ZAIRProgram(num_qubits=2, architecture_name=arch.name)
        program.instructions.append(
            InitInst(init_locs=[QLoc(0, 0, 0, 0), QLoc(1, 0, 5, 5)])
        )
        program.instructions.append(
            RearrangeJob(
                aod_id=0,
                begin_locs=[QLoc(0, 0, 0, 0)],
                end_locs=[QLoc(0, 0, 5, 5)],  # qubit 1 already lives here
            )
        )
        _expect_rejection(arch, program, match="occupied trap", check="trap-occupancy")


class TestAbstractPrograms:
    def test_out_of_range_qubit_index(self, sc_result):
        program = copy.deepcopy(sc_result.program)
        layer = next(i for i in program.instructions if isinstance(i, GateLayerInst))
        gate = layer.gates[0]
        layer.gates[0] = FixedGate(
            gate.kind,
            (program.num_qubits + 3,) * len(gate.qubits),
            gate.begin_time,
            gate.duration_us,
        )
        # A 2q gate on identical out-of-range qubits trips the range check first.
        _expect_rejection(None, program, match="out of range", check="index-range")

    def test_overlapping_per_qubit_schedule(self):
        program = ZAIRProgram(num_qubits=2)
        program.instructions.append(
            GateLayerInst(
                gates=[
                    FixedGate("1q", (0,), begin_time=0.0, duration_us=1.0),
                    FixedGate("1q", (0,), begin_time=0.5, duration_us=1.0),
                ]
            )
        )
        _expect_rejection(None, program, match="still busy", check="schedule-overlap")

    def test_bogus_coupling_edge(self, sc_result):
        program = copy.deepcopy(sc_result.program)
        assert program.coupling_edges is not None
        edges = {frozenset(edge) for edge in program.coupling_edges}
        bogus = next(
            (a, b)
            for a in range(program.num_qubits)
            for b in range(a + 1, program.num_qubits)
            if frozenset((a, b)) not in edges
        )
        layer = next(
            i
            for i in program.instructions
            if isinstance(i, GateLayerInst)
            and any(g.kind != "1q" for g in i.gates)
        )
        index, gate = next(
            (k, g) for k, g in enumerate(layer.gates) if g.kind != "1q"
        )
        layer.gates[index] = FixedGate(gate.kind, bogus, gate.begin_time, gate.duration_us)
        _expect_rejection(
            None, program, match="not an edge of the", check="coupling-edge"
        )


class TestUnmutatedProgramsStayValid:
    """The fixtures really are known-good; the mutations above are the cause."""

    def test_zac_program_valid(self, arch, zac_result):
        validate_program(arch, zac_result.program)

    def test_sc_program_valid(self, sc_result):
        validate_program(None, sc_result.program)
