"""Tests for incremental prefix-reuse compilation (repro.core.incremental).

The load-bearing contract (module docstring of ``repro.core.incremental``):
an incremental compile is bit-identical to a from-scratch compile seeded
with the same initial placement.  For the non-SA ablation presets the
initial placement is a pure function of the qubit count, so incremental
equals the *plain* from-scratch compile bit-for-bit; in SA mode the
inherited placement is the ancestor's, so the comparison injects it.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.presets import reference_zoned_architecture
from repro.circuits.random import generate
from repro.circuits.scheduling import clear_preprocess_cache
from repro.circuits.synthesis import (
    ResynthesisPrefixCache,
    get_resynthesis_prefix_cache,
    resynthesize,
    resynthesize_extend,
)
from repro.core.compiler import ZACCompiler
from repro.core.config import ZACConfig
from repro.core.incremental import (
    PrefixCache,
    PrefixEntry,
    clear_prefix_cache,
    common_stage_prefix,
    get_prefix_cache,
    stage_pair_key,
)
from repro.core.placement.initial import sa_placement, trivial_placement
from repro.zair import StaleColumnsError, validate_program

ARCH = reference_zoned_architecture()

#: Small SA budget so property tests stay fast; the contract is exact
#: equivalence, which holds for any budget.
SA_CONFIG = ZACConfig(sa_iterations=60)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_prefix_cache()
    clear_preprocess_cache()
    get_resynthesis_prefix_cache().clear()
    yield
    clear_prefix_cache()
    clear_preprocess_cache()
    get_resynthesis_prefix_cache().clear()


def _brickwork(num_qubits: int, depth: int, seed: int = 0):
    return generate(
        "brickwork", seed=seed, num_qubits=num_qubits, depth=depth
    ).circuit


def _entry(stage_pairs, num_qubits: int = 4) -> PrefixEntry:
    return PrefixEntry(
        num_qubits=num_qubits,
        stage_pairs=stage_pairs,
        initial={},
        plans=[object()] * len(stage_pairs),
        jobs={},
    )


# ---------------------------------------------------------------------------
# PrefixCache unit tests
# ---------------------------------------------------------------------------


class TestPrefixCache:
    SCOPE = ("arch", "config", True)
    A = ((0, 1),)
    B = ((2, 3),)
    C = ((0, 2),)

    def test_exact_match_resumes_every_plan(self):
        cache = PrefixCache()
        cache.store(self.SCOPE, _entry((self.A, self.B)))
        match = cache.lookup(self.SCOPE, 4, (self.A, self.B))
        assert match.kind == "resume"
        assert match.common_stages == 2
        assert match.reusable_plans == 2

    def test_extension_resumes_all_but_lookahead_plan(self):
        cache = PrefixCache()
        cache.store(self.SCOPE, _entry((self.A, self.B)))
        match = cache.lookup(self.SCOPE, 4, (self.A, self.B, self.C))
        assert match.kind == "resume"
        assert match.common_stages == 2
        # The cached plan for the last stage looked ahead past the cached
        # circuit's end, so only r_common - 1 plans are adoptable.
        assert match.reusable_plans == 1

    def test_longest_prefix_entry_wins(self):
        cache = PrefixCache()
        cache.store(self.SCOPE, _entry((self.A,)))
        cache.store(self.SCOPE, _entry((self.A, self.B)))
        match = cache.lookup(self.SCOPE, 4, (self.A, self.B, self.C))
        assert match.kind == "resume"
        assert match.common_stages == 2

    def test_divergent_entry_warm_starts_only(self):
        cache = PrefixCache()
        cache.store(self.SCOPE, _entry((self.A, self.B)))
        # Request diverges at stage 1: the entry is not a full prefix.
        match = cache.lookup(
            self.SCOPE, 4, (self.A, self.C), want_warm=True
        )
        assert match.kind == "warm"
        assert match.common_stages == 1
        match = cache.lookup(self.SCOPE, 4, (self.A, self.C), want_warm=False)
        assert match.kind == "miss"

    def test_scope_and_width_isolation(self):
        cache = PrefixCache()
        cache.store(self.SCOPE, _entry((self.A,)))
        assert cache.lookup(("other",), 4, (self.A,)).kind == "miss"
        assert cache.lookup(self.SCOPE, 5, (self.A,), want_warm=True).kind == "miss"

    def test_fifo_eviction(self):
        cache = PrefixCache(max_entries=2)
        cache.store(self.SCOPE, _entry((self.A,)))
        cache.store(self.SCOPE, _entry((self.B,)))
        cache.store(self.SCOPE, _entry((self.C,)))
        assert len(cache) == 2
        assert cache.lookup(self.SCOPE, 4, (self.A,)).kind == "miss"
        assert cache.lookup(self.SCOPE, 4, (self.C,)).kind == "resume"

    def test_restore_refreshes_without_eviction(self):
        cache = PrefixCache(max_entries=2)
        cache.store(self.SCOPE, _entry((self.A,)))
        cache.store(self.SCOPE, _entry((self.B,)))
        cache.store(self.SCOPE, _entry((self.A,)))  # refresh, not insert
        assert len(cache) == 2

    def test_stats_and_clear(self):
        cache = PrefixCache()
        cache.store(self.SCOPE, _entry((self.A,)))
        cache.lookup(self.SCOPE, 4, (self.A,))
        cache.lookup(self.SCOPE, 4, (self.C,))
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "warm_hits": 0,
            "misses": 1,
        }
        cache.clear()
        assert cache.stats() == {
            "entries": 0,
            "hits": 0,
            "warm_hits": 0,
            "misses": 0,
        }


def test_common_stage_prefix():
    a, b, c = ((0, 1),), ((2, 3),), ((0, 2),)
    assert common_stage_prefix((a, b), (a, b, c)) == 2
    assert common_stage_prefix((a, b), (a, c)) == 1
    assert common_stage_prefix((a,), (b,)) == 0
    assert common_stage_prefix((), (a,)) == 0


def test_stage_pair_key_is_hashable_content_key():
    pairs = [[(0, 1), (2, 3)], [(1, 2)]]
    key = stage_pair_key(pairs)
    assert key == (((0, 1), (2, 3)), ((1, 2),))
    hash(key)


# ---------------------------------------------------------------------------
# Prefix-resumable resynthesis
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(0, 10),
    depth=st.integers(2, 6),
    delta=st.integers(1, 4),
    generator=st.sampled_from(["brickwork", "qaoa_regular", "clifford_t"]),
)
@settings(max_examples=30, deadline=None)
def test_resynthesize_extend_matches_from_scratch(seed, depth, delta, generator):
    shallow = generate(generator, seed=seed, num_qubits=6, depth=depth).circuit
    deep = generate(generator, seed=seed, num_qubits=6, depth=depth + delta).circuit
    assert deep.gates[: len(shallow.gates)] == shallow.gates  # generator contract

    _, state = resynthesize_extend(shallow)
    extended, _ = resynthesize_extend(deep, state)
    scratch = resynthesize(deep)
    assert extended.gates == scratch.gates


def test_resynthesis_prefix_cache_hits_and_is_exact():
    cache = ResynthesisPrefixCache()
    shallow = _brickwork(6, 3)
    deep = _brickwork(6, 6)
    first = cache.resynthesize(shallow)
    second = cache.resynthesize(deep)
    assert cache.hits == 1 and cache.misses == 1
    assert first.gates == resynthesize(shallow).gates
    assert second.gates == resynthesize(deep).gates


# ---------------------------------------------------------------------------
# End-to-end equivalence: incremental vs from-scratch
# ---------------------------------------------------------------------------


def _compile_scratch(config: ZACConfig, circuit, initial=None):
    """From-scratch compile, optionally seeded with an initial placement."""
    scratch_config = dataclasses.replace(
        config, incremental=False, warm_start=False
    )
    compiler = ZACCompiler(ARCH, scratch_config)
    ctx = compiler._context(circuit=circuit, circuit_name=circuit.name)
    if initial is not None:
        ctx.initial = dict(initial)
    compiler.pipeline.run(ctx)
    return ctx.program


def _cached_entry_for(circuit, config: ZACConfig):
    """The prefix-cache entry stored for ``circuit`` under ``config``."""
    compiler = ZACCompiler(ARCH, config)
    ctx = compiler._context(circuit=circuit, circuit_name=circuit.name)
    from repro.core.incremental import prefix_scope, stage_pair_key as spk
    from repro.circuits.scheduling import preprocess

    staged = preprocess(circuit)
    pairs = spk([stage.pairs for stage in staged.rydberg_stages])
    scope = prefix_scope(ctx)
    for (entry_scope, entry_pairs), entry in get_prefix_cache()._entries.items():
        if entry_scope == scope and entry_pairs == pairs:
            return entry
    raise AssertionError("no cache entry stored for circuit")


@given(
    seed=st.integers(0, 6),
    depth=st.integers(2, 5),
    delta=st.integers(1, 3),
    preset=st.sampled_from(["vanilla", "dyn_place", "dyn_place_reuse", "full"]),
)
@settings(max_examples=20, deadline=None)
def test_ladder_extension_equals_from_scratch(seed, depth, delta, preset):
    """Compile depth d, then extend to d+delta incrementally: the extension
    is bit-identical to compiling depth d+delta from scratch (with the
    inherited initial placement injected for the SA preset)."""
    clear_prefix_cache()
    clear_preprocess_cache()
    get_resynthesis_prefix_cache().clear()

    base = getattr(ZACConfig, preset)()
    if base.use_sa_initial_placement:
        base = dataclasses.replace(base, sa_iterations=60)
    inc_config = dataclasses.replace(base, incremental=True, warm_start=True)

    shallow = _brickwork(8, depth, seed)
    deep = _brickwork(8, depth + delta, seed)

    compiler = ZACCompiler(ARCH, inc_config)
    compiler.compile(shallow)
    stats_before = get_prefix_cache().stats()
    incremental = compiler.compile(deep)
    assert get_prefix_cache().hits == stats_before["hits"] + 1  # resume path

    validate_program(ARCH, incremental.program)

    if base.use_sa_initial_placement:
        # SA mode inherits the ancestor's placement: compare against a
        # scratch compile seeded with that same placement.
        initial = _cached_entry_for(shallow, inc_config).initial
        scratch = _compile_scratch(inc_config, deep, initial=initial)
    else:
        # Trivial placement is a pure function of the qubit count, so
        # incremental must equal the plain from-scratch compile.
        scratch = _compile_scratch(inc_config, deep)
    assert incremental.program.to_json() == scratch.to_json()


def test_identical_recompile_is_bit_identical_in_sa_mode():
    """An exact stage-pair match resumes with every artifact reused, so even
    the SA preset reproduces the stored program bit-for-bit."""
    inc_config = dataclasses.replace(SA_CONFIG, incremental=True)
    circuit = _brickwork(10, 6)
    compiler = ZACCompiler(ARCH, inc_config)
    first = compiler.compile(circuit)
    second = compiler.compile(circuit)
    assert get_prefix_cache().hits == 1
    assert first.program.to_json() == second.program.to_json()


def test_warm_start_path_taken_for_divergent_sibling():
    """With no full-prefix entry, the SA annealer is seeded from the most
    similar cached circuit; the result still validates."""
    inc_config = dataclasses.replace(SA_CONFIG, incremental=True, warm_start=True)
    compiler = ZACCompiler(ARCH, inc_config)
    # Deep circuit first: the shallow request shares every one of its own
    # stages with it, but the entry is longer, so resume is impossible.
    compiler.compile(_brickwork(10, 8))
    result = compiler.compile(_brickwork(10, 4))
    stats = get_prefix_cache().stats()
    assert stats["warm_hits"] == 1
    validate_program(ARCH, result.program)


def test_incremental_off_never_touches_prefix_cache():
    compiler = ZACCompiler(ARCH, SA_CONFIG)
    compiler.compile(_brickwork(8, 4))
    assert get_prefix_cache().stats() == {
        "entries": 0,
        "hits": 0,
        "warm_hits": 0,
        "misses": 0,
    }


def test_parameter_sweep_hits_resume_path():
    """Circuits differing only in 1Q gate parameters share all Rydberg stage
    pairs, so a sweep's later members resume with everything reused."""
    inc_config = dataclasses.replace(
        ZACConfig.dyn_place_reuse(), incremental=True
    )
    base = generate("qaoa_regular", seed=0, num_qubits=8, depth=2).circuit
    variant = generate("qaoa_regular", seed=0, num_qubits=8, depth=2).circuit
    import repro.circuits.gates as gates_mod

    # Perturb every 1Q rotation angle; the CZ structure is untouched.
    perturbed = type(variant)(variant.num_qubits, variant.name + "_v2")
    for gate in variant.gates:
        if gate.num_qubits == 1 and gate.params:
            perturbed.append(
                gates_mod.Gate(
                    gate.name,
                    gate.qubits,
                    tuple(p * 0.9 + 0.01 for p in gate.params),
                )
            )
        else:
            perturbed.append(gate)

    compiler = ZACCompiler(ARCH, inc_config)
    compiler.compile(base)
    result = compiler.compile(perturbed)
    assert get_prefix_cache().hits == 1
    validate_program(ARCH, result.program)
    # Same stage structure, different angles: the 1Q gates must carry the
    # perturbed parameters (scheduling is always re-run in full).
    scratch = _compile_scratch(inc_config, perturbed)
    assert result.program.to_json() == scratch.to_json()


# ---------------------------------------------------------------------------
# Warm-start placement seeding
# ---------------------------------------------------------------------------


def test_sa_placement_rejects_invalid_warm_start():
    circuit = _brickwork(6, 4)
    from repro.circuits.scheduling import preprocess

    pairs = [s.pairs for s in preprocess(circuit, cache=False).rydberg_stages]
    cold = sa_placement(ARCH, 6, pairs, SA_CONFIG)
    # Invalid seeds (wrong qubit set / non-injective) are ignored, so the
    # run is identical to a cold one.
    partial = {0: trivial_placement(ARCH, 6)[0]}
    duplicated = {q: trivial_placement(ARCH, 6)[0] for q in range(6)}
    assert sa_placement(ARCH, 6, pairs, SA_CONFIG, warm_start=partial) == cold
    assert sa_placement(ARCH, 6, pairs, SA_CONFIG, warm_start=duplicated) == cold


def test_sa_placement_accepts_valid_warm_start():
    circuit = _brickwork(6, 4)
    from repro.circuits.scheduling import preprocess

    pairs = [s.pairs for s in preprocess(circuit, cache=False).rydberg_stages]
    seed_placement = sa_placement(ARCH, 6, pairs, SA_CONFIG)
    warm = sa_placement(ARCH, 6, pairs, SA_CONFIG, warm_start=seed_placement)
    # A converged seed is a local optimum for the same objective: the warm
    # run must keep a placement at least as good (the annealer returns the
    # best state seen, which includes its starting point).
    assert sorted(warm) == list(range(6))
    assert len(set(warm.values())) == 6


# ---------------------------------------------------------------------------
# Columnar-view staleness debug assertion (ZAIRProgram.columns)
# ---------------------------------------------------------------------------


def _small_program():
    compiler = ZACCompiler(ARCH, ZACConfig.vanilla())
    return compiler.compile(_brickwork(4, 2)).program


def test_columns_stale_mutation_detected_under_debug_env(monkeypatch):
    monkeypatch.setenv("REPRO_DEBUG_STALE_COLUMNS", "1")
    program = _small_program()
    program.columns(ARCH)
    program.instructions.append(program.instructions[-1])
    with pytest.raises(StaleColumnsError):
        program.columns(ARCH)


def test_columns_invalidate_clears_staleness(monkeypatch):
    monkeypatch.setenv("REPRO_DEBUG_STALE_COLUMNS", "1")
    program = _small_program()
    program.columns(ARCH)
    program.instructions.append(program.instructions[-1])
    program.invalidate_columns()
    program.columns(ARCH)  # rebuilt, no error

    # Unmutated repeat hits stay silent.
    program.columns(ARCH)


def test_columns_staleness_check_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_DEBUG_STALE_COLUMNS", raising=False)
    program = _small_program()
    view = program.columns(ARCH)
    program.instructions.append(program.instructions[-1])
    # Documented (dangerous) default: the stale view is served silently.
    assert program.columns(ARCH) is view


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------


def test_compile_service_clear_cache_clears_prefix_layers():
    from repro.api.parallel import get_compile_service

    inc_config = dataclasses.replace(SA_CONFIG, incremental=True)
    ZACCompiler(ARCH, inc_config).compile(_brickwork(6, 3))
    assert get_prefix_cache().stats()["entries"] == 1
    service = get_compile_service()
    service.clear_cache()
    stats = service.cache_stats()
    assert stats["prefix"]["entries"] == 0
    assert stats["resynthesis"]["entries"] == 0
    assert set(stats) == {"results", "prefix", "resynthesis"}
