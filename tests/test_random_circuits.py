"""Tests for the seeded random workload generators (circuits/random.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate, single_qubit_matrix
from repro.circuits.random import (
    GENERATORS,
    GeneratorError,
    WorkloadDescriptor,
    generate,
    generator_names,
    inverse_circuit,
    inverse_gate,
)

ALL_GENERATORS = generator_names()


# ---------------------------------------------------------------------------
# A small dense-unitary oracle (fine for <= 6 qubits)
# ---------------------------------------------------------------------------


def _two_qubit_matrix(gate: Gate) -> np.ndarray:
    if gate.name == "cz":
        return np.diag([1, 1, 1, -1]).astype(complex)
    if gate.name in ("cx", "cnot"):
        return np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
    if gate.name == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
    if gate.name == "rzz":
        half = gate.params[0] / 2.0
        phase = np.exp(1j * half)
        return np.diag([1 / phase, phase, phase, 1 / phase]).astype(complex)
    if gate.name in ("cp", "cu1"):
        return np.diag([1, 1, 1, np.exp(1j * gate.params[0])]).astype(complex)
    raise NotImplementedError(gate.name)


def _apply(unitary: np.ndarray, qubits: tuple[int, ...], state: np.ndarray, n: int) -> np.ndarray:
    dim = 1 << n
    k = len(qubits)
    full = np.zeros((dim, dim), dtype=complex)
    for col in range(dim):
        bits = [(col >> (n - 1 - q)) & 1 for q in range(n)]
        sub_in = 0
        for q in qubits:
            sub_in = (sub_in << 1) | bits[q]
        for sub_out in range(1 << k):
            amp = unitary[sub_out, sub_in]
            if amp == 0:
                continue
            new_bits = list(bits)
            for index, q in enumerate(qubits):
                new_bits[q] = (sub_out >> (k - 1 - index)) & 1
            row = 0
            for bit in new_bits:
                row = (row << 1) | bit
            full[row, col] += amp
    return full @ state


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Dense unitary of a small circuit (test oracle, exponential in qubits)."""
    state = np.eye(1 << circuit.num_qubits, dtype=complex)
    for gate in circuit:
        if gate.num_qubits == 1:
            matrix = single_qubit_matrix(gate)
        else:
            matrix = _two_qubit_matrix(gate)
        state = _apply(matrix, gate.qubits, state, circuit.num_qubits)
    return state


# ---------------------------------------------------------------------------
# Generator contracts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_GENERATORS)
class TestGeneratorContracts:
    def test_deterministic_under_fixed_seed(self, name):
        first = generate(name, seed=11, num_qubits=8, depth=4)
        second = generate(name, seed=11, num_qubits=8, depth=4)
        assert first.circuit.gates == second.circuit.gates
        assert first.circuit.name == second.circuit.name
        assert first.descriptor == second.descriptor

    def test_different_seeds_differ(self, name):
        a = generate(name, seed=1, num_qubits=8, depth=4).circuit
        b = generate(name, seed=2, num_qubits=8, depth=4).circuit
        assert a.gates != b.gates

    @pytest.mark.parametrize("num_qubits,depth", [(2, 1), (5, 3), (12, 8)])
    def test_respects_qubit_and_depth_bounds(self, name, num_qubits, depth):
        circuit = generate(name, seed=0, num_qubits=num_qubits, depth=depth).circuit
        assert circuit.num_qubits == num_qubits
        assert len(circuit) > 0
        assert circuit.used_qubits() <= set(range(num_qubits))
        # Each requested layer contributes a bounded number of gate levels,
        # so circuit depth cannot blow up past the per-layer gate count.
        assert 1 <= circuit.depth() <= (depth + 1) * (num_qubits + 2)

    def test_descriptor_rebuilds_identical_circuit(self, name):
        workload = generate(name, seed=5, num_qubits=6, depth=3)
        rebuilt = WorkloadDescriptor.from_dict(workload.descriptor.to_dict()).build()
        assert rebuilt.gates == workload.circuit.gates

    def test_rejects_degenerate_sizes(self, name):
        with pytest.raises(GeneratorError):
            generate(name, seed=0, num_qubits=1, depth=2)
        with pytest.raises(GeneratorError):
            generate(name, seed=0, num_qubits=4, depth=0)

    def test_prefix_property_of_depth(self, name):
        """Fixed seed: the depth-d circuit is a gate prefix of the depth-2d one."""
        if name == "mirror":
            pytest.skip("mirror appends the inverse half, so it is not a prefix family")
        shallow = generate(name, seed=9, num_qubits=6, depth=3).circuit
        deep = generate(name, seed=9, num_qubits=6, depth=6).circuit
        assert deep.gates[: len(shallow.gates)] == shallow.gates


def test_unknown_generator_rejected():
    with pytest.raises(GeneratorError, match="unknown generator"):
        generate("nope", seed=0, num_qubits=4, depth=2)
    with pytest.raises(GeneratorError, match="invalid parameters"):
        generate("brickwork", seed=0, num_qubits=4, depth=2, bogus=1)


def test_registry_lists_all_expected_generators():
    assert set(GENERATORS) >= {
        "clifford_t",
        "qaoa_erdos_renyi",
        "qaoa_regular",
        "hardware_efficient",
        "brickwork",
        "mirror",
    }


# ---------------------------------------------------------------------------
# Inverses and mirror circuits
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "gate",
    [
        Gate("h", (0,)),
        Gate("t", (0,)),
        Gate("sdg", (0,)),
        Gate("rx", (0,), (0.7,)),
        Gate("rz", (0,), (-1.2,)),
        Gate("u3", (0,), (0.4, 1.1, -0.3)),
        Gate("u2", (0,), (0.5, -0.8)),
    ],
)
def test_single_qubit_inverse_is_exact_dagger(gate):
    matrix = single_qubit_matrix(gate)
    inverse = single_qubit_matrix(inverse_gate(gate))
    assert np.allclose(inverse @ matrix, np.eye(2), atol=1e-12)


def test_inverse_gate_rejects_unknown():
    with pytest.raises(GeneratorError):
        inverse_gate(Gate("iswap", (0, 1)))


def test_inverse_circuit_reverses_order():
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cz(0, 1)
    circuit.t(1)
    inverse = inverse_circuit(circuit)
    assert [g.name for g in inverse] == ["tdg", "cz", "h"]


@pytest.mark.parametrize("base", ["brickwork", "clifford_t", "hardware_efficient", "qaoa_erdos_renyi"])
def test_mirror_circuits_are_the_identity(base):
    circuit = generate("mirror", seed=17, num_qubits=4, depth=4, base=base).circuit
    unitary = circuit_unitary(circuit)
    phase = unitary[0, 0]
    assert abs(abs(phase) - 1.0) < 1e-9
    assert np.allclose(unitary, phase * np.eye(unitary.shape[0]), atol=1e-9)


def test_mirror_rejects_recursive_base():
    with pytest.raises(GeneratorError):
        generate("mirror", seed=0, num_qubits=4, depth=2, base="mirror")
