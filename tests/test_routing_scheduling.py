"""Unit tests for movement routing (conflicts, jobs) and AOD scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import RydbergSite, StorageTrap, reference_zoned_architecture
from repro.core.model import LEFT, RIGHT, Location, Movement
from repro.core.routing.conflicts import conflict_graph, movements_compatible
from repro.core.routing.jobs import build_jobs, movements_to_job, partition_movements
from repro.core.scheduling.load_balance import schedule_epoch
from repro.zair import validate_job_ordering


@pytest.fixture(scope="module")
def arch():
    return reference_zoned_architecture()


def storage(row, col):
    return Location.at_storage(StorageTrap(0, row, col))


def site(row, col, side=LEFT):
    return Location.at_site(RydbergSite(0, row, col), side)


class TestCompatibility:
    def test_parallel_movements_compatible(self, arch):
        a = Movement(0, storage(99, 0), site(0, 0, LEFT))
        b = Movement(1, storage(99, 10), site(0, 1, LEFT))
        assert movements_compatible(arch, a, b)

    def test_crossing_movements_incompatible(self, arch):
        a = Movement(0, storage(99, 0), site(0, 5, LEFT))
        b = Movement(1, storage(99, 10), site(0, 1, LEFT))
        assert not movements_compatible(arch, a, b)

    def test_row_merge_incompatible(self, arch):
        # Different storage rows ending at the same y coordinate.
        a = Movement(0, storage(99, 0), site(0, 0, LEFT))
        b = Movement(1, storage(98, 5), site(0, 1, LEFT))
        assert not movements_compatible(arch, a, b)

    def test_same_column_split_incompatible(self, arch):
        # Same storage column (same x) ending at different x coordinates.
        a = Movement(0, storage(99, 0), site(0, 0, LEFT))
        b = Movement(1, storage(98, 0), site(0, 3, LEFT))
        assert not movements_compatible(arch, a, b)

    def test_conflict_graph_symmetry(self, arch):
        movements = [
            Movement(0, storage(99, 0), site(0, 5, LEFT)),
            Movement(1, storage(99, 10), site(0, 1, LEFT)),
            Movement(2, storage(99, 20), site(0, 6, LEFT)),
        ]
        adjacency = conflict_graph(arch, movements)
        for i, neighbours in enumerate(adjacency):
            for j in neighbours:
                assert i in adjacency[j]


class TestJobPartitioning:
    def test_empty_epoch(self, arch):
        assert partition_movements(arch, []) == []
        assert build_jobs(arch, []) == []

    def test_compatible_epoch_single_job(self, arch):
        movements = [
            Movement(q, storage(99, q * 3), site(0, q, LEFT)) for q in range(5)
        ]
        groups = partition_movements(arch, movements)
        assert len(groups) == 1
        assert len(groups[0]) == 5

    def test_groups_are_internally_compatible(self, arch):
        movements = [
            Movement(0, storage(99, 0), site(0, 5, LEFT)),
            Movement(1, storage(99, 10), site(0, 1, LEFT)),
            Movement(2, storage(99, 20), site(0, 6, LEFT)),
            Movement(3, storage(98, 5), site(1, 0, LEFT)),
        ]
        groups = partition_movements(arch, movements)
        assert sum(len(g) for g in groups) == len(movements)
        for group in groups:
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    assert movements_compatible(arch, group[i], group[j])

    def test_jobs_pass_zair_ordering_validation(self, arch):
        movements = [
            Movement(0, storage(99, 0), site(0, 5, LEFT)),
            Movement(1, storage(99, 10), site(0, 1, LEFT)),
            Movement(2, storage(99, 20), site(0, 6, RIGHT)),
        ]
        for job in build_jobs(arch, movements):
            validate_job_ordering(arch, job)
            assert job.insts  # lowered machine instructions present

    def test_movements_to_job_preserves_qubits(self, arch):
        movements = [Movement(7, storage(99, 0), site(0, 0, LEFT))]
        job = movements_to_job(arch, movements, aod_id=2)
        assert job.aod_id == 2
        assert job.qubits == [7]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(2, 12))
    def test_property_partition_is_exact_cover(self, arch, seed, n):
        import random

        rng = random.Random(seed)
        cols = rng.sample(range(60), n)
        sites = rng.sample(range(20), n)
        movements = [
            Movement(q, storage(99, cols[q]), site(0, sites[q], LEFT)) for q in range(n)
        ]
        groups = partition_movements(arch, movements)
        flattened = [m.qubit for g in groups for m in g]
        assert sorted(flattened) == list(range(n))
        for group in groups:
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    assert movements_compatible(arch, group[i], group[j])


class TestLoadBalancing:
    def test_empty(self):
        assert schedule_epoch([], 2) == ([], 0.0)

    def test_single_aod_is_sequential(self):
        schedules, makespan = schedule_epoch([3.0, 1.0, 2.0], 1)
        assert makespan == pytest.approx(6.0)
        spans = sorted((s.start, s.end) for s in schedules)
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert b_start >= a_end - 1e-9

    def test_two_aods_balance(self):
        schedules, makespan = schedule_epoch([4.0, 3.0, 2.0, 1.0], 2)
        assert makespan == pytest.approx(5.0)
        assert {s.aod_id for s in schedules} == {0, 1}

    def test_more_aods_never_hurt(self):
        durations = [5.0, 4.0, 3.0, 2.0, 1.0]
        makespans = [schedule_epoch(durations, k)[1] for k in range(1, 5)]
        assert all(a >= b - 1e-9 for a, b in zip(makespans, makespans[1:]))
        assert makespans[0] == pytest.approx(sum(durations))

    def test_rejects_zero_aods(self):
        with pytest.raises(ValueError):
            schedule_epoch([1.0], 0)

    @settings(max_examples=25, deadline=None)
    @given(
        durations=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=12),
        num_aods=st.integers(1, 4),
    )
    def test_property_makespan_bounds(self, durations, num_aods):
        schedules, makespan = schedule_epoch(durations, num_aods)
        assert makespan >= max(durations) - 1e-9
        assert makespan <= sum(durations) + 1e-9
        # Jobs on the same AOD never overlap.
        by_aod = {}
        for s in schedules:
            by_aod.setdefault(s.aod_id, []).append((s.start, s.end))
        for spans in by_aod.values():
            spans.sort()
            for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
                assert b_start >= a_end - 1e-9
