"""Bit-exactness properties of the vectorized placement engine.

The placement hot paths (SA proposal costing, batched gate-candidate
scoring, batched return-trap scoring) each keep a scalar twin as an
equivalence oracle.  These tests pin the engine's contract:

* the batched matching scorers produce *bit-identical* assignments and
  totals to their scalar references, on every ablation preset;
* a fixed-seed SA run through the vectorized price table follows the exact
  trajectory of its scalar delta twin (same placements, same statistics);
* whole placement plans -- and, for the non-SA presets, whole compiled
  programs -- are bit-identical between ``use_fast_paths`` on and off;
* the vectorized engine leaves the prefix-cache key unchanged, so
  incremental recompiles keep hitting.
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.presets import (
    reference_zoned_architecture,
    small_dual_zone_architecture,
)
from repro.circuits.random import generate
from repro.circuits.scheduling import clear_preprocess_cache, preprocess
from repro.circuits.synthesis import get_resynthesis_prefix_cache
from repro.core.compiler import ZACCompiler
from repro.core.config import ZACConfig
from repro.core.incremental import clear_prefix_cache, get_prefix_cache
from repro.core.placement.dynamic import DynamicPlacer
from repro.core.placement.gate_placement import place_gates
from repro.core.placement.initial import sa_placement, trivial_placement
from repro.core.placement.storage_placement import place_returning_qubits

ARCH = reference_zoned_architecture()

PRESETS = ["vanilla", "dyn_place", "dyn_place_reuse", "full"]


def _staged_pairs(seed: int, num_qubits: int, depth: int) -> list[list[tuple[int, int]]]:
    circuit = generate("brickwork", seed=seed, num_qubits=num_qubits, depth=depth).circuit
    staged = preprocess(circuit, cache=False)
    return [stage.pairs for stage in staged.rydberg_stages]


# ---------------------------------------------------------------------------
# SA: vectorized price table vs scalar delta twin (trajectory bit-identity)
# ---------------------------------------------------------------------------


class TestSATrajectoryBitIdentity:
    @given(
        seed=st.integers(0, 12),
        num_qubits=st.integers(4, 24),
        depth=st.integers(1, 8),
        sa_seed=st.integers(0, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_vectorized_trajectory_equals_scalar_twin(
        self, seed, num_qubits, depth, sa_seed
    ):
        staged = _staged_pairs(seed, num_qubits, depth)
        config = ZACConfig(sa_iterations=400, seed=sa_seed)
        results: dict[str, object] = {}
        placements = {
            mode: sa_placement(
                ARCH,
                num_qubits,
                staged,
                config,
                on_result=lambda r, m=mode: results.__setitem__(m, r),
                cost_mode=mode,
            )
            for mode in ("vectorized", "scalar")
        }
        assert placements["vectorized"] == placements["scalar"]
        vec, sca = results.get("vectorized"), results.get("scalar")
        # on_result fires only when the annealer actually ran (gates present).
        assert (vec is None) == (sca is None)
        if vec is not None:
            assert vec.best_cost == sca.best_cost  # bitwise
            assert vec.initial_cost == sca.initial_cost
            assert vec.iterations == sca.iterations
            assert vec.accepted_moves == sca.accepted_moves

    def test_warm_start_trajectories_also_identical(self):
        staged = _staged_pairs(3, 12, 4)
        config = ZACConfig(sa_iterations=300, seed=7)
        warm = sa_placement(ARCH, 12, staged, config, cost_mode="scalar")
        a = sa_placement(ARCH, 12, staged, config, warm_start=warm, cost_mode="vectorized")
        b = sa_placement(ARCH, 12, staged, config, warm_start=warm, cost_mode="scalar")
        assert a == b

    def test_unknown_cost_mode_rejected(self):
        with pytest.raises(ValueError, match="cost_mode"):
            sa_placement(ARCH, 4, [[(0, 1)]], cost_mode="simd")


# ---------------------------------------------------------------------------
# Batched matching scorers vs scalar references (exact equality)
# ---------------------------------------------------------------------------


def _zone_workload(rng: random.Random, num_qubits: int):
    """Random qubit positions: storage traps plus some entanglement-zone sites."""
    placement = trivial_placement(ARCH, num_qubits)
    positions = {q: ARCH.trap_position(t) for q, t in placement.items()}
    sites = list(ARCH.iter_rydberg_sites())
    rng.shuffle(sites)
    in_zone = sorted(rng.sample(range(num_qubits), num_qubits // 2))
    for i, q in enumerate(in_zone):
        positions[q] = ARCH.site_position(sites[i])
    return placement, positions, in_zone, sites


class TestBatchedScorersMatchScalar:
    @given(seed=st.integers(0, 30), num_qubits=st.integers(6, 28))
    @settings(max_examples=25, deadline=None)
    def test_place_gates_bitwise(self, seed, num_qubits):
        rng = random.Random(seed)
        placement, positions, _, sites = _zone_workload(rng, num_qubits)
        qubits = list(range(num_qubits))
        rng.shuffle(qubits)
        gates = [
            (qubits[i], qubits[i + 1]) for i in range(0, (num_qubits // 2) * 2 - 1, 2)
        ]
        next_gates = None
        if rng.random() < 0.7:
            rng.shuffle(qubits)
            next_gates = [(qubits[0], qubits[1]), (qubits[2], qubits[3])]
        occupied = set(rng.sample(sites, rng.randrange(3)))
        expansion = rng.choice([1, 2, 4])
        fast = place_gates(
            ARCH, gates, positions, occupied, next_gates, expansion, fast=True
        )
        reference = place_gates(
            ARCH, gates, positions, occupied, next_gates, expansion, fast=False
        )
        assert fast[0] == reference[0]
        assert fast[1] == reference[1]  # bitwise, not approx

    @given(seed=st.integers(0, 30), num_qubits=st.integers(6, 28))
    @settings(max_examples=25, deadline=None)
    def test_place_returning_qubits_bitwise(self, seed, num_qubits):
        rng = random.Random(seed)
        placement, positions, in_zone, _ = _zone_workload(rng, num_qubits)
        home = dict(placement)
        related = {}
        for q in in_zone:
            related[q] = (
                positions[rng.randrange(num_qubits)] if rng.random() < 0.5 else None
            )
        occupied = set(home.values())
        alpha = rng.choice([0.1, 0.3])
        k = rng.choice([1, 2])
        fast = place_returning_qubits(
            ARCH, in_zone, positions, home, related, occupied, alpha, k, fast=True
        )
        reference = place_returning_qubits(
            ARCH, in_zone, positions, home, related, occupied, alpha, k, fast=False
        )
        assert fast[0] == reference[0]
        assert fast[1] == reference[1]  # bitwise, not approx

    def test_multi_zone_architecture_also_bitwise(self):
        arch = small_dual_zone_architecture()
        rng = random.Random(1)
        n = min(10, arch.num_storage_traps // 2)
        placement = trivial_placement(arch, n)
        positions = {q: arch.trap_position(t) for q, t in placement.items()}
        qubits = list(range(n))
        rng.shuffle(qubits)
        gates = [(qubits[0], qubits[1]), (qubits[2], qubits[3])]
        fast = place_gates(arch, gates, positions, set(), fast=True)
        reference = place_gates(arch, gates, positions, set(), fast=False)
        assert fast == reference


# ---------------------------------------------------------------------------
# Plan- and program-level bit-identity across use_fast_paths
# ---------------------------------------------------------------------------


class TestPlanAndProgramBitIdentity:
    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_dynamic_placer_plans_identical_given_initial(self, preset, seed):
        """With the same initial placement, the full stage-plan sequence is
        bit-identical between the batched and scalar matching scorers (the
        SA divergence question does not arise: placement is fixed)."""
        staged = _staged_pairs(seed, 14, 5)
        initial = trivial_placement(ARCH, 14)
        base = getattr(ZACConfig, preset)()
        fast_plan = DynamicPlacer(
            ARCH, dataclasses.replace(base, use_fast_paths=True)
        ).run(staged, initial)
        reference_plan = DynamicPlacer(
            ARCH, dataclasses.replace(base, use_fast_paths=False)
        ).run(staged, initial)
        assert fast_plan == reference_plan

    @pytest.mark.parametrize("preset", ["vanilla", "dyn_place", "dyn_place_reuse"])
    def test_non_sa_presets_compile_bit_identical(self, preset):
        """For the non-SA presets the whole compiled program is bit-identical
        with fast paths on and off (the SA presets' naive path legitimately
        anneals a different-but-equal-quality trajectory; their oracle is
        the scalar cost_mode twin above)."""
        circuit = generate("brickwork", seed=2, num_qubits=12, depth=4).circuit
        base = getattr(ZACConfig, preset)()
        programs = []
        for fast in (True, False):
            config = dataclasses.replace(base, use_fast_paths=fast)
            compiler = ZACCompiler(ARCH, config)
            programs.append(compiler.compile(circuit).program)
        assert programs[0].instructions == programs[1].instructions


# ---------------------------------------------------------------------------
# Prefix-cache key stability
# ---------------------------------------------------------------------------


class TestPrefixCacheKeyStability:
    def test_incremental_recompiles_still_hit(self):
        """The vectorized engine must not perturb the prefix-cache scope key
        (architecture fingerprint, config repr, lower jobs): extending a
        cached circuit still hits and resumes."""
        clear_prefix_cache()
        clear_preprocess_cache()
        get_resynthesis_prefix_cache().clear()

        config = dataclasses.replace(
            ZACConfig.dyn_place(), incremental=True, use_fast_paths=True
        )
        shallow = generate("brickwork", seed=5, num_qubits=8, depth=3).circuit
        deep = generate("brickwork", seed=5, num_qubits=8, depth=6).circuit
        assert deep.gates[: len(shallow.gates)] == shallow.gates

        ZACCompiler(ARCH, config).compile(shallow)
        cache = get_prefix_cache()
        assert cache.misses >= 1 and cache.hits == 0
        ZACCompiler(ARCH, config).compile(deep)
        assert cache.hits == 1

        # And the incremental result matches a from-scratch compile.
        scratch = ZACCompiler(
            ARCH, dataclasses.replace(config, incremental=False)
        ).compile(deep)
        incremental = ZACCompiler(ARCH, config).compile(deep)
        assert incremental.program.instructions == scratch.program.instructions
