"""Unit tests for the benchmark circuit library."""

import pytest

from repro.circuits.library import (
    PAPER_BENCHMARKS,
    bernstein_vazirani,
    cat_state,
    cuccaro_adder,
    get_benchmark,
    ghz,
    heisenberg_chain,
    inverse_qft,
    ising_chain,
    knn,
    multiplier,
    qaoa_maxcut,
    qft,
    random_brickwork,
    random_circuit,
    seca,
    swap_test,
    w_state,
)
from repro.circuits.scheduling import preprocess


class TestRegistry:
    def test_all_seventeen_benchmarks_present(self):
        assert len(PAPER_BENCHMARKS) == 17

    @pytest.mark.parametrize("name", list(PAPER_BENCHMARKS))
    def test_qubit_count_matches_name(self, name):
        circuit = get_benchmark(name)
        expected = int(name.rsplit("_n", 1)[1])
        assert circuit.num_qubits == expected
        assert circuit.name == name

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("does_not_exist")

    @pytest.mark.parametrize("name", list(PAPER_BENCHMARKS))
    def test_benchmarks_preprocess_cleanly(self, name):
        staged = preprocess(get_benchmark(name))
        staged.validate()
        assert staged.num_2q_gates > 0


class TestGenerators:
    def test_bv_gate_structure(self):
        circ = bernstein_vazirani(14)
        # All-ones secret: 13 CNOTs sharing the ancilla.
        assert circ.count_ops()["cx"] == 13
        graph = circ.interaction_graph()
        assert graph.degree(13) == 13

    def test_bv_custom_secret(self):
        circ = bernstein_vazirani(6, secret="10101")
        assert circ.count_ops()["cx"] == 3

    def test_bv_rejects_bad_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(6, secret="111")

    def test_ghz_and_cat_are_chains(self):
        for factory in (ghz, cat_state):
            circ = factory(10)
            assert circ.count_ops()["cx"] == 9
            assert circ.count_ops()["h"] == 1

    def test_wstate_structure(self):
        circ = w_state(8)
        ops = circ.count_ops()
        assert ops["cry"] == 7
        assert ops["cx"] == 7

    def test_ising_parallelism(self):
        circ = ising_chain(20, steps=1)
        staged = preprocess(circ)
        # Even/odd bond layers each split into two CZ stages -> 4 stages total.
        assert staged.num_rydberg_stages == 4
        assert max(len(s.gates) for s in staged.rydberg_stages) >= 9

    def test_ising_periodic_adds_bond(self):
        open_chain = ising_chain(10, steps=1)
        ring = ising_chain(10, steps=1, periodic=True)
        assert ring.num_2q_gates == open_chain.num_2q_gates + 1

    def test_qft_gate_count(self):
        circ = qft(18, include_swaps=False)
        assert circ.count_ops()["cp"] == 18 * 17 // 2

    def test_qft_with_swaps(self):
        assert qft(6).count_ops()["swap"] == 3

    def test_inverse_qft_mirrors_qft(self):
        forward = qft(6, include_swaps=False)
        backward = inverse_qft(6, include_swaps=False)
        assert forward.num_2q_gates == backward.num_2q_gates

    def test_swap_test_requires_odd(self):
        with pytest.raises(ValueError):
            swap_test(10)

    def test_swap_test_structure(self):
        circ = swap_test(25)
        assert circ.count_ops()["cswap"] == 12

    def test_knn_structure(self):
        circ = knn(31)
        assert circ.count_ops()["cswap"] == 15

    def test_multiplier_toffoli_heavy(self):
        circ = multiplier(13)
        assert circ.count_ops()["ccx"] > 5

    def test_seca_has_rounds(self):
        circ = seca(11)
        assert circ.count_ops()["ccx"] >= 9

    def test_adder_width(self):
        circ = cuccaro_adder(4)
        assert circ.num_qubits == 10

    def test_qaoa_default_ring(self):
        circ = qaoa_maxcut(8)
        assert circ.count_ops()["rzz"] == 8

    def test_heisenberg_has_two_body_terms(self):
        circ = heisenberg_chain(6, steps=2)
        ops = circ.count_ops()
        assert ops["rxx"] == ops["rzz"] > 0

    def test_random_circuit_determinism(self):
        a = random_circuit(5, 30, seed=7)
        b = random_circuit(5, 30, seed=7)
        assert [g.name for g in a] == [g.name for g in b]
        assert [g.qubits for g in a] == [g.qubits for g in b]

    def test_random_brickwork_layers(self):
        circ = random_brickwork(6, layers=4, seed=1)
        assert circ.num_2q_gates == 2 * 2 + 3 * 2
