"""Unit tests for the OpenQASM 2.0 reader/writer."""

import math

import pytest

from repro.circuits import qasm
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import qft

EXAMPLE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
rz(pi/4) q[2];
ccx q[0], q[1], q[2];
barrier q[0], q[1];
measure q[0] -> c[0];
"""


class TestParsing:
    def test_parses_example(self):
        circ = qasm.loads(EXAMPLE)
        assert circ.num_qubits == 3
        assert [g.name for g in circ] == ["h", "cx", "rz", "ccx"]
        assert circ.gates[2].params[0] == pytest.approx(math.pi / 4)

    def test_rejects_unknown_gate(self):
        with pytest.raises(qasm.QASMError):
            qasm.loads("qreg q[1]; bogus q[0];")

    def test_rejects_missing_qreg(self):
        with pytest.raises(qasm.QASMError):
            qasm.loads("h q[0];")

    def test_rejects_unknown_register(self):
        with pytest.raises(qasm.QASMError):
            qasm.loads("qreg q[2]; h r[0];")

    def test_parameter_expressions(self):
        circ = qasm.loads("qreg q[1]; rz(2*pi/8) q[0]; rx(-0.5) q[0];")
        assert circ.gates[0].params[0] == pytest.approx(math.pi / 4)
        assert circ.gates[1].params[0] == pytest.approx(-0.5)


class TestRoundtrip:
    def test_dumps_loads_roundtrip(self):
        circ = QuantumCircuit(3, name="rt")
        circ.h(0)
        circ.cp(0.3, 0, 1)
        circ.ccx(0, 1, 2)
        text = qasm.dumps(circ)
        parsed = qasm.loads(text)
        assert parsed.num_qubits == 3
        assert [g.name for g in parsed] == [g.name for g in circ]
        assert [g.qubits for g in parsed] == [g.qubits for g in circ]

    def test_qft_roundtrip_preserves_counts(self):
        circ = qft(5)
        parsed = qasm.loads(qasm.dumps(circ))
        assert parsed.count_ops() == circ.count_ops()

    def test_file_roundtrip(self, tmp_path):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.cz(0, 1)
        path = tmp_path / "circ.qasm"
        qasm.dump(circ, str(path))
        loaded = qasm.load(str(path))
        assert [g.name for g in loaded] == ["h", "cz"]
