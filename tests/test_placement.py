"""Unit tests for the ZAC placement components (cost, SA, reuse, matchings)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import RydbergSite, StorageTrap, reference_zoned_architecture
from repro.core import ZACConfig
from repro.core.model import GatePlacementEntry
from repro.core.placement.annealing import anneal
from repro.core.placement.cost import (
    gate_cost,
    initial_placement_cost,
    nearest_gate_site,
    sqrt_distance,
    stage_weight,
    storage_return_cost,
)
from repro.core.placement.gate_placement import (
    GatePlacementError,
    candidate_sites,
    place_gates,
)
from repro.core.placement.initial import (
    PlacementError,
    sa_placement,
    storage_rows_by_proximity,
    trivial_placement,
)
from repro.core.placement.reuse import find_reuse_matching, shared_qubits
from repro.core.placement.storage_placement import (
    k_neighbourhood,
    place_returning_qubits,
)


@pytest.fixture(scope="module")
def arch():
    return reference_zoned_architecture()


class TestCostFunctions:
    def test_stage_weights(self):
        assert stage_weight(0) == 1.0
        assert stage_weight(1) == pytest.approx(0.9)
        assert stage_weight(50) == pytest.approx(0.1)

    def test_paper_example_gate_cost(self):
        """Section V-A worked example: cost of g0 at site (0, 0) is 4.05."""
        site = (0.0, 19.0)
        q0 = (13.0, 9.0)
        q1 = (1.0, 9.0)
        assert math.hypot(site[0] - q0[0], site[1] - q0[1]) == pytest.approx(16.40, abs=0.01)
        assert math.hypot(site[0] - q1[0], site[1] - q1[1]) == pytest.approx(10.05, abs=0.01)
        # Same storage row -> parallel movement -> max of the square roots.
        assert gate_cost(site, q0, q1) == pytest.approx(4.05, abs=0.01)

    def test_gate_cost_sum_when_rows_differ(self):
        site = (0.0, 0.0)
        a, b = (3.0, 4.0), (6.0, 8.0)
        assert gate_cost(site, a, b) == pytest.approx(math.sqrt(5.0) + math.sqrt(10.0))

    def test_sqrt_distance(self):
        assert sqrt_distance((0.0, 0.0), (0.0, 16.0)) == pytest.approx(4.0)

    def test_nearest_gate_site_middle(self, arch):
        pos_a = arch.trap_position(StorageTrap(0, 99, 0))
        pos_b = arch.trap_position(StorageTrap(0, 99, 99))
        site = nearest_gate_site(arch, pos_a, pos_b)
        near_a = arch.nearest_rydberg_site(*pos_a)
        near_b = arch.nearest_rydberg_site(*pos_b)
        assert site.col == (near_a.col + near_b.col) // 2

    def test_storage_return_cost_lookahead(self):
        base = storage_return_cost((0.0, 0.0), (0.0, 9.0), None)
        with_related = storage_return_cost((0.0, 0.0), (0.0, 9.0), (0.0, 4.0), alpha=0.1)
        assert with_related == pytest.approx(base + 0.1 * 2.0)

    def test_initial_placement_cost_weights(self, arch):
        positions = {
            0: arch.trap_position(StorageTrap(0, 99, 0)),
            1: arch.trap_position(StorageTrap(0, 99, 1)),
        }
        single = initial_placement_cost(arch, positions, [(1.0, 0, 1)])
        halved = initial_placement_cost(arch, positions, [(0.5, 0, 1)])
        assert halved == pytest.approx(single / 2)


class TestAnnealingFramework:
    def test_minimises_simple_quadratic(self):
        state = {"x": 10.0}

        def cost():
            return (state["x"] - 3.0) ** 2

        def propose(rng):
            old = state["x"]
            state["x"] = old + rng.uniform(-1.0, 1.0)

            def undo():
                state["x"] = old

            return undo

        result = anneal(cost, propose, iterations=2000, seed=1)
        assert result.best_cost < 1.0
        assert result.best_cost <= result.initial_cost
        assert result.improvement > 0.9

    def test_handles_no_proposals(self):
        result = anneal(lambda: 5.0, lambda rng: None, iterations=10)
        assert result.best_cost == 5.0
        assert result.accepted_moves == 0

    def test_restores_best_state_at_high_final_temperature(self):
        """With no cooling the walk drifts away from the optimum; the caller
        must still get the best configuration back, not the final one."""
        state = {"x": 10.0}

        def cost():
            return (state["x"] - 3.0) ** 2

        def propose(rng):
            old = state["x"]
            state["x"] = old + rng.uniform(-2.0, 2.0)

            def undo():
                state["x"] = old

            return undo

        result = anneal(
            cost,
            propose,
            iterations=500,
            initial_temperature=50.0,
            cooling=1.0,  # stays hot: worse moves keep being accepted
            seed=3,
            convergence_window=10_000,
        )
        # The returned state must be exactly the best-cost state.
        assert cost() == pytest.approx(result.best_cost, abs=1e-12)

    def test_restore_best_disabled_keeps_final_state(self):
        state = {"x": 10.0}

        def cost():
            return (state["x"] - 3.0) ** 2

        def propose(rng):
            old = state["x"]
            state["x"] = old + rng.uniform(-2.0, 2.0)

            def undo():
                state["x"] = old

            return undo

        result = anneal(
            cost,
            propose,
            iterations=500,
            initial_temperature=50.0,
            cooling=1.0,
            seed=3,
            convergence_window=10_000,
            restore_best=False,
        )
        # The hot walk ends away from the best state (legacy caveat).
        assert cost() > result.best_cost + 1e-9

    def test_delta_protocol_skips_cost_function(self):
        """With (undo, delta) proposals, cost_fn is evaluated exactly once."""
        state = {"x": 10.0}
        calls = {"n": 0}

        def cost():
            calls["n"] += 1
            return (state["x"] - 3.0) ** 2

        def propose(rng):
            old = state["x"]
            new = old + rng.uniform(-1.0, 1.0)
            state["x"] = new
            delta = (new - 3.0) ** 2 - (old - 3.0) ** 2

            def undo():
                state["x"] = old

            return undo, delta

        result = anneal(cost, propose, iterations=1000, seed=1)
        assert calls["n"] == 1
        assert result.best_cost < 1.0
        assert (state["x"] - 3.0) ** 2 == pytest.approx(result.best_cost, abs=1e-9)


class TestInitialPlacement:
    def test_trivial_starts_in_row_nearest_entanglement_zone(self, arch):
        placement = trivial_placement(arch, 5)
        rows = storage_rows_by_proximity(arch)
        assert all(trap.row == rows[0] for trap in placement.values())
        assert [trap.col for trap in placement.values()] == [0, 1, 2, 3, 4]

    def test_trivial_overflows_to_next_row(self, arch):
        placement = trivial_placement(arch, 150)
        assert len(set(placement.values())) == 150

    def test_trivial_rejects_too_many_qubits(self, arch):
        with pytest.raises(PlacementError):
            trivial_placement(arch, arch.num_storage_traps + 1)

    def test_sa_placement_no_worse_than_trivial(self, arch):
        staged_gates = [[(0, 5)], [(1, 4)], [(2, 3)]]
        from repro.core.placement.initial import weighted_gate_list

        weighted = weighted_gate_list(staged_gates)

        def cost_of(placement):
            positions = {q: arch.trap_position(t) for q, t in placement.items()}
            return initial_placement_cost(arch, positions, weighted)

        trivial = trivial_placement(arch, 6)
        config = ZACConfig(sa_iterations=300, seed=2)
        annealed = sa_placement(arch, 6, staged_gates, config)
        assert cost_of(annealed) <= cost_of(trivial) + 1e-9
        assert len(set(annealed.values())) == 6

    def test_sa_placement_deterministic_for_fixed_seed(self, arch):
        staged_gates = [[(0, 3), (1, 2)]]
        a = sa_placement(arch, 4, staged_gates, ZACConfig(sa_iterations=100, seed=7))
        b = sa_placement(arch, 4, staged_gates, ZACConfig(sa_iterations=100, seed=7))
        assert a == b

    def test_sa_placement_trivial_when_no_gates(self, arch):
        assert sa_placement(arch, 3, []) == trivial_placement(arch, 3)


class TestReuseMatching:
    def gate(self, qubits, site):
        return GatePlacementEntry(qubits=qubits, site=site)

    def test_shared_qubits(self):
        assert shared_qubits((0, 1), (1, 2)) == [1]
        assert shared_qubits((0, 1), (0, 1)) == [0, 1]
        assert shared_qubits((0, 1), (2, 3)) == []

    def test_empty_inputs(self):
        assert find_reuse_matching([], [(0, 1)]) == []
        assert find_reuse_matching([self.gate((0, 1), RydbergSite(0, 0, 0))], []) == []

    def test_simple_chain(self):
        prev = [self.gate((0, 1), RydbergSite(0, 0, 0))]
        decisions = find_reuse_matching(prev, [(1, 2)])
        assert len(decisions) == 1
        assert decisions[0].reused_qubit == 1
        assert decisions[0].prev_gate_index == 0

    def test_conflicting_reuses_resolved_by_matching(self):
        """Fig. 6a: both qubits of g0 reusable by different gates -> only one reuse per gate."""
        prev = [
            self.gate((0, 1), RydbergSite(0, 0, 0)),
            self.gate((3, 4), RydbergSite(0, 0, 1)),
        ]
        nxt = [(1, 2), (3, 5), (0, 4)]
        decisions = find_reuse_matching(prev, nxt)
        assert len(decisions) == 2
        assert len({d.prev_gate_index for d in decisions}) == 2
        assert len({d.next_gate_index for d in decisions}) == 2

    def test_maximum_cardinality(self):
        prev = [
            self.gate((0, 1), RydbergSite(0, 0, 0)),
            self.gate((2, 3), RydbergSite(0, 0, 1)),
            self.gate((4, 5), RydbergSite(0, 0, 2)),
        ]
        nxt = [(1, 2), (3, 4), (5, 0)]
        decisions = find_reuse_matching(prev, nxt)
        assert len(decisions) == 3


class TestGatePlacement:
    def test_candidate_window_clipping(self, arch):
        sites = candidate_sites(arch, RydbergSite(0, 0, 0), expansion=1)
        assert len(sites) == 4  # 2 rows x 2 cols at the corner

    def test_places_each_gate_on_distinct_free_site(self, arch):
        positions = {
            q: arch.trap_position(StorageTrap(0, 99, q)) for q in range(6)
        }
        gates = [(0, 1), (2, 3), (4, 5)]
        sites, cost = place_gates(arch, gates, positions, occupied_sites=set())
        assert len(sites) == 3
        assert len(set(sites)) == 3
        assert cost > 0

    def test_respects_occupied_sites(self, arch):
        positions = {q: arch.trap_position(StorageTrap(0, 99, q)) for q in range(2)}
        occupied = {s for s in arch.iter_rydberg_sites() if s != RydbergSite(0, 6, 19)}
        sites, _ = place_gates(arch, [(0, 1)], positions, occupied_sites=occupied)
        assert sites == [RydbergSite(0, 6, 19)]

    def test_too_many_gates_raises(self, arch):
        positions = {q: arch.trap_position(StorageTrap(0, 99, q % 100)) for q in range(4)}
        occupied = set(arch.iter_rydberg_sites())
        with pytest.raises(GatePlacementError):
            place_gates(arch, [(0, 1), (2, 3)], positions, occupied_sites=occupied)

    def test_empty_gate_list(self, arch):
        assert place_gates(arch, [], {}, occupied_sites=set()) == ([], 0.0)

    def test_nearby_qubits_get_nearby_sites(self, arch):
        # Qubits under the left edge of the zone should be placed on the left side.
        positions = {0: (35.0, 297.0), 1: (38.0, 297.0)}
        sites, _ = place_gates(arch, [(0, 1)], positions, occupied_sites=set())
        assert sites[0].col <= 2
        assert sites[0].row == 0


class TestStoragePlacement:
    def test_k_neighbourhood_size(self, arch):
        centre = StorageTrap(0, 50, 50)
        assert len(k_neighbourhood(arch, centre, 1)) == 5
        corner = StorageTrap(0, 0, 0)
        assert len(k_neighbourhood(arch, corner, 1)) == 3

    def test_returns_to_home_when_nothing_better(self, arch):
        home = {0: StorageTrap(0, 99, 0)}
        positions = {0: arch.site_position(RydbergSite(0, 0, 0))}
        occupied = {StorageTrap(0, 99, 0)}
        assignment, cost = place_returning_qubits(
            arch, [0], positions, home, {0: None}, occupied
        )
        assert assignment[0].zone_index == 0
        assert cost > 0

    def test_distinct_traps_for_multiple_qubits(self, arch):
        home = {q: StorageTrap(0, 99, q) for q in range(4)}
        positions = {q: arch.site_position(RydbergSite(0, 0, q)) for q in range(4)}
        occupied = set(home.values())
        assignment, _ = place_returning_qubits(
            arch, list(range(4)), positions, home, {q: None for q in range(4)}, occupied
        )
        assert len(set(assignment.values())) == 4

    def test_related_qubit_pulls_assignment_closer(self, arch):
        home = {0: StorageTrap(0, 99, 0)}
        positions = {0: arch.site_position(RydbergSite(0, 0, 10))}
        related = arch.trap_position(StorageTrap(0, 99, 60))
        occupied = {StorageTrap(0, 99, 0)}
        with_related, _ = place_returning_qubits(
            arch, [0], positions, home, {0: related}, occupied, alpha=1.0
        )
        without_related, _ = place_returning_qubits(
            arch, [0], positions, home, {0: None}, occupied
        )
        rel_col = 60
        assert abs(with_related[0].col - rel_col) <= abs(without_related[0].col - rel_col)

    def test_empty_input(self, arch):
        assert place_returning_qubits(arch, [], {}, {}, {}, set()) == ({}, 0.0)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(1, 8))
    def test_property_all_assigned_traps_unique_and_unoccupied(self, arch, n):
        home = {q: StorageTrap(0, 99, q) for q in range(n)}
        positions = {q: arch.site_position(RydbergSite(0, 0, q % 20)) for q in range(n)}
        occupied = set(home.values()) | {StorageTrap(0, 98, c) for c in range(50)}
        assignment, _ = place_returning_qubits(
            arch, list(range(n)), positions, home, {q: None for q in range(n)}, occupied
        )
        assert len(set(assignment.values())) == n
        for qubit, trap in assignment.items():
            assert trap == home[qubit] or trap not in occupied
