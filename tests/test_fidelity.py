"""Unit tests for the fidelity and timing models."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fidelity import (
    NEUTRAL_ATOM,
    SC_GRID,
    SC_HERON,
    ExecutionMetrics,
    NeutralAtomParams,
    SCExecutionMetrics,
    estimate_fidelity,
    estimate_sc_fidelity,
    movement_distance_um,
    movement_time_us,
    neutral_atom_params_from_spec,
    rearrangement_time_us,
)


class TestMovementModel:
    def test_zero_distance(self):
        assert movement_time_us(0.0) == 0.0

    def test_ten_micrometres(self):
        # d / t^2 = 2750 m/s^2  =>  t = sqrt(10 um / 2.75e-3 um/us^2) ~ 60.3 us.
        assert movement_time_us(10.0) == pytest.approx(60.30, abs=0.05)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            movement_time_us(-1.0)

    def test_inverse_relation(self):
        t = movement_time_us(42.0)
        assert movement_distance_um(t) == pytest.approx(42.0)

    def test_rearrangement_time_includes_transfers(self):
        t = rearrangement_time_us(10.0)
        assert t == pytest.approx(2 * NEUTRAL_ATOM.t_transfer_us + movement_time_us(10.0))

    @settings(max_examples=30, deadline=None)
    @given(d=st.floats(0.001, 1000.0))
    def test_sqrt_scaling(self, d):
        # Doubling the distance multiplies the time by sqrt(2).
        assert movement_time_us(2 * d) == pytest.approx(
            math.sqrt(2) * movement_time_us(d), rel=1e-9
        )


class TestNeutralAtomFidelity:
    def test_table1_defaults(self):
        assert NEUTRAL_ATOM.f_2q == 0.995
        assert NEUTRAL_ATOM.f_1q == 0.9997
        assert NEUTRAL_ATOM.t_2q_us == pytest.approx(0.36)
        assert NEUTRAL_ATOM.t_1q_us == 52.0
        assert NEUTRAL_ATOM.t2_us == pytest.approx(1.5e6)

    def test_gate_only_fidelity(self):
        metrics = ExecutionMetrics(num_qubits=2, num_1q_gates=3, num_2q_gates=2)
        breakdown = estimate_fidelity(metrics)
        assert breakdown.one_q_gate == pytest.approx(0.9997**3)
        assert breakdown.two_q_gate == pytest.approx(0.995**2)
        assert breakdown.decoherence == 1.0
        assert breakdown.total == pytest.approx(0.9997**3 * 0.995**2)

    def test_excitation_and_transfer_terms(self):
        metrics = ExecutionMetrics(
            num_qubits=1, num_excitations=10, num_transfers=20
        )
        breakdown = estimate_fidelity(metrics)
        assert breakdown.excitation == pytest.approx(0.9975**10)
        assert breakdown.atom_transfer == pytest.approx(0.999**20)
        assert breakdown.two_q_gate_with_excitation == pytest.approx(0.9975**10)

    def test_decoherence_uses_idle_time(self):
        metrics = ExecutionMetrics(
            num_qubits=2,
            duration_us=1000.0,
            qubit_busy_us={0: 1000.0, 1: 250.0},
        )
        breakdown = estimate_fidelity(metrics)
        expected = 1.0 * (1.0 - 750.0 / NEUTRAL_ATOM.t2_us)
        assert breakdown.decoherence == pytest.approx(expected)

    def test_decoherence_floor_at_zero(self):
        metrics = ExecutionMetrics(num_qubits=1, duration_us=1e9)
        breakdown = estimate_fidelity(metrics)
        assert breakdown.decoherence == 0.0
        assert breakdown.total == 0.0

    def test_idle_time_never_negative(self):
        metrics = ExecutionMetrics(
            num_qubits=1, duration_us=5.0, qubit_busy_us={0: 50.0}
        )
        assert metrics.idle_time_us(0) == 0.0

    def test_breakdown_as_dict(self):
        metrics = ExecutionMetrics(num_qubits=1, num_2q_gates=1)
        d = estimate_fidelity(metrics).as_dict()
        assert set(d) == {"1q_gate", "2q_gate", "excitation", "atom_transfer", "decoherence", "total"}

    @settings(max_examples=30, deadline=None)
    @given(
        busy=st.lists(st.floats(0.0, 2000.0), min_size=0, max_size=200),
        duration=st.floats(0.0, 2000.0),
    )
    def test_vectorized_decoherence_matches_naive(self, busy, duration):
        from repro.fidelity.model import decoherence_naive, decoherence_vectorized

        metrics = ExecutionMetrics(
            num_qubits=len(busy),
            duration_us=duration,
            qubit_busy_us={q: b for q, b in enumerate(busy)},
        )
        fast = decoherence_vectorized(metrics, NEUTRAL_ATOM)
        naive = decoherence_naive(metrics, NEUTRAL_ATOM)
        assert fast == pytest.approx(naive, rel=1e-12, abs=1e-15)
        # And through the public entry point (scalar below the size cutoff).
        assert estimate_fidelity(metrics, vectorized=True).decoherence == pytest.approx(
            estimate_fidelity(metrics, vectorized=False).decoherence, rel=1e-12, abs=1e-15
        )

    def test_vectorized_decoherence_on_compiled_circuit(self):
        from repro.arch import reference_zoned_architecture
        from repro.circuits.library import get_benchmark
        from repro.core import ZACCompiler
        from repro.fidelity.model import decoherence_naive, decoherence_vectorized

        # ghz_n78 crosses VECTORIZE_MIN_QUBITS, so the numpy path really runs.
        result = ZACCompiler(reference_zoned_architecture()).compile(get_benchmark("ghz_n78"))
        fast = estimate_fidelity(result.metrics, vectorized=True)
        naive = estimate_fidelity(result.metrics, vectorized=False)
        assert fast.decoherence == pytest.approx(naive.decoherence, rel=1e-12)
        assert decoherence_vectorized(result.metrics, NEUTRAL_ATOM) == pytest.approx(
            decoherence_naive(result.metrics, NEUTRAL_ATOM), rel=1e-12
        )

    @settings(max_examples=30, deadline=None)
    @given(
        g1=st.integers(0, 200),
        g2=st.integers(0, 200),
        exc=st.integers(0, 200),
        tran=st.integers(0, 200),
    )
    def test_fidelity_bounded_and_monotone(self, g1, g2, exc, tran):
        metrics = ExecutionMetrics(
            num_qubits=3,
            num_1q_gates=g1,
            num_2q_gates=g2,
            num_excitations=exc,
            num_transfers=tran,
        )
        f = estimate_fidelity(metrics)
        assert 0.0 <= f.total <= 1.0
        worse = ExecutionMetrics(
            num_qubits=3,
            num_1q_gates=g1 + 1,
            num_2q_gates=g2 + 1,
            num_excitations=exc + 1,
            num_transfers=tran + 1,
        )
        assert estimate_fidelity(worse).total <= f.total


class TestSuperconductingFidelity:
    def test_parameters_from_table1(self):
        assert SC_HERON.t_2q_us == pytest.approx(0.068)
        assert SC_GRID.t_2q_us == pytest.approx(0.042)
        assert SC_GRID.t2_us == pytest.approx(89.0)

    def test_sc_model_has_no_transfer_or_excitation(self):
        metrics = SCExecutionMetrics(num_qubits=2, num_1q_gates=5, num_2q_gates=3)
        breakdown = estimate_sc_fidelity(metrics, SC_HERON)
        assert breakdown.excitation == 1.0
        assert breakdown.atom_transfer == 1.0
        assert breakdown.two_q_gate == pytest.approx(0.999**3)

    def test_sc_decoherence(self):
        metrics = SCExecutionMetrics(
            num_qubits=1, duration_us=89.0, qubit_busy_us={0: 0.0}
        )
        breakdown = estimate_sc_fidelity(metrics, SC_GRID)
        assert breakdown.decoherence == pytest.approx(0.0)


class TestParamsFromSpec:
    def test_parses_paper_json_keys(self):
        params = neutral_atom_params_from_spec(
            {
                "operation_duration": {"rydberg": 0.36, "1qGate": 52, "atom_transfer": 15},
                "operation_fidelity": {
                    "two_qubit_gate": 0.995,
                    "single_qubit_gate": 0.9997,
                    "atom_transfer": 0.999,
                },
                "qubit_spec": {"T": 1.5e6},
            }
        )
        assert params == NeutralAtomParams()

    def test_missing_keys_fall_back_to_defaults(self):
        params = neutral_atom_params_from_spec({})
        assert params == NeutralAtomParams()
