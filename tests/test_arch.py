"""Unit tests for the architecture specification, presets and serialization."""


import pytest

from repro.arch import (
    AODArray,
    Architecture,
    ArchitectureError,
    D_RYD,
    RydbergSite,
    SLMArray,
    StorageTrap,
    Zone,
    distance,
    from_spec_dict,
    logical_block_architecture,
    monolithic_architecture,
    reference_zoned_architecture,
    small_dual_zone_architecture,
    small_single_zone_architecture,
    to_spec_dict,
    with_num_aods,
)
from repro.arch import serialization


class TestSLMArray:
    def test_trap_positions(self):
        slm = SLMArray(slm_id=0, sep=(3.0, 4.0), num_row=5, num_col=6, offset=(10.0, 20.0))
        assert slm.trap_position(0, 0) == (10.0, 20.0)
        assert slm.trap_position(2, 3) == (10.0 + 9.0, 20.0 + 8.0)
        assert slm.num_traps == 30

    def test_out_of_range_trap(self):
        slm = SLMArray(slm_id=0, sep=(3.0, 3.0), num_row=2, num_col=2, offset=(0.0, 0.0))
        with pytest.raises(ArchitectureError):
            slm.trap_position(2, 0)

    def test_nearest_trap_clamps(self):
        slm = SLMArray(slm_id=0, sep=(3.0, 3.0), num_row=4, num_col=4, offset=(0.0, 0.0))
        assert slm.nearest_trap(4.0, 4.0) == (1, 1)
        assert slm.nearest_trap(-50.0, 1000.0) == (3, 0)

    def test_invalid_dimensions(self):
        with pytest.raises(ArchitectureError):
            SLMArray(slm_id=0, sep=(3.0, 3.0), num_row=0, num_col=2, offset=(0.0, 0.0))
        with pytest.raises(ArchitectureError):
            SLMArray(slm_id=0, sep=(0.0, 3.0), num_row=2, num_col=2, offset=(0.0, 0.0))


class TestReferenceArchitecture:
    def test_counts_match_paper(self):
        arch = reference_zoned_architecture()
        assert arch.num_storage_traps == 100 * 100
        assert arch.num_rydberg_sites == 7 * 20
        assert arch.num_aods == 1

    def test_site_geometry_matches_fig2(self):
        arch = reference_zoned_architecture()
        site = RydbergSite(0, 0, 0)
        assert arch.site_position(site) == (35.0, 307.0)
        # The partner trap sits d_Ryd = 2 um to the right.
        left = arch.site_position(site)
        right = arch.site_partner_position(site)
        assert distance(left, right) == pytest.approx(D_RYD)

    def test_storage_geometry(self):
        arch = reference_zoned_architecture()
        assert arch.trap_position(StorageTrap(0, 0, 0)) == (0.0, 0.0)
        assert arch.trap_position(StorageTrap(0, 99, 1)) == (3.0, 297.0)

    def test_nearest_lookups(self):
        arch = reference_zoned_architecture()
        assert arch.nearest_rydberg_site(36.0, 306.0) == RydbergSite(0, 0, 0)
        assert arch.nearest_storage_trap(1.4, 1.4) == StorageTrap(0, 0, 0)

    def test_iterators_cover_everything(self):
        arch = reference_zoned_architecture()
        assert sum(1 for _ in arch.iter_rydberg_sites()) == arch.num_rydberg_sites
        sites = list(arch.iter_rydberg_sites())
        assert len(set(sites)) == len(sites)

    def test_multi_aod_variant(self):
        arch = with_num_aods(reference_zoned_architecture(), 3)
        assert arch.num_aods == 3
        assert [a.aod_id for a in arch.aods] == [0, 1, 2]

    def test_with_num_aods_rejects_zero(self):
        with pytest.raises(ValueError):
            with_num_aods(reference_zoned_architecture(), 0)


class TestOtherPresets:
    def test_monolithic_has_no_storage(self):
        arch = monolithic_architecture()
        assert arch.num_storage_traps == 0
        assert arch.num_rydberg_sites == 100

    def test_small_architectures(self):
        arch1 = small_single_zone_architecture()
        arch2 = small_dual_zone_architecture()
        assert arch1.num_storage_traps == 120
        assert arch1.num_rydberg_sites == 60
        assert arch2.num_storage_traps == 120
        assert arch2.num_rydberg_sites == 60
        assert len(arch2.entanglement_zones) == 2

    def test_dual_zone_zones_do_not_overlap_storage(self):
        arch = small_dual_zone_architecture()
        storage = arch.storage_zones[0]
        for zone in arch.entanglement_zones:
            overlap_y = not (
                zone.offset[1] + zone.dimension[1] <= storage.offset[1]
                or zone.offset[1] >= storage.offset[1] + storage.dimension[1]
            )
            assert not overlap_y

    def test_logical_architecture_shapes(self):
        arch = logical_block_architecture(128)
        assert arch.site_shape(0) == (3, 5)
        assert arch.num_storage_traps >= 128


class TestValidation:
    def test_requires_aod(self):
        zone = reference_zoned_architecture().entanglement_zones[0]
        with pytest.raises(ArchitectureError):
            Architecture("bad", [], [], [zone])

    def test_requires_entanglement_zone(self):
        with pytest.raises(ArchitectureError):
            Architecture("bad", [AODArray(0)], [], [])

    def test_entanglement_zone_needs_two_slms(self):
        slm = SLMArray(slm_id=0, sep=(12.0, 10.0), num_row=2, num_col=2, offset=(0.0, 0.0))
        zone = Zone(zone_id=0, offset=(0.0, 0.0), dimension=(24.0, 20.0), slms=(slm,))
        with pytest.raises(ArchitectureError):
            Architecture("bad", [AODArray(0)], [], [zone])

    def test_duplicate_slm_ids_rejected(self):
        arch = reference_zoned_architecture()
        storage = arch.storage_zones[0]
        clash = Zone(
            zone_id=1,
            offset=(500.0, 0.0),
            dimension=(10.0, 10.0),
            slms=(storage.slms[0],),
        )
        with pytest.raises(ArchitectureError):
            Architecture(
                "bad",
                arch.aods,
                [storage, clash],
                arch.entanglement_zones,
            )

    def test_duplicate_aod_ids_rejected(self):
        arch = reference_zoned_architecture()
        with pytest.raises(ArchitectureError):
            Architecture(
                "bad",
                [AODArray(0), AODArray(0)],
                arch.storage_zones,
                arch.entanglement_zones,
            )

    def test_slm_by_id_lookup(self):
        arch = reference_zoned_architecture()
        assert arch.slm_by_id(0).num_row == 100
        with pytest.raises(ArchitectureError):
            arch.slm_by_id(99)

    def test_zone_contains(self):
        zone = reference_zoned_architecture().storage_zones[0]
        assert zone.contains(150.0, 150.0)
        assert not zone.contains(-1.0, 0.0)


class TestSerialization:
    def test_roundtrip_reference(self):
        arch = reference_zoned_architecture()
        restored = from_spec_dict(to_spec_dict(arch))
        assert restored.num_rydberg_sites == arch.num_rydberg_sites
        assert restored.num_storage_traps == arch.num_storage_traps
        assert restored.num_aods == arch.num_aods
        assert restored.site_position(RydbergSite(0, 0, 0)) == arch.site_position(
            RydbergSite(0, 0, 0)
        )

    def test_roundtrip_dual_zone(self):
        arch = small_dual_zone_architecture()
        restored = serialization.loads(serialization.dumps(arch))
        assert len(restored.entanglement_zones) == 2

    def test_paper_fig20_style_dict(self):
        spec = {
            "name": "full_compute_store_architecture",
            "storage_zones": [
                {
                    "zone_id": 0,
                    "slms": [
                        {"id": 0, "site_seperation": [3, 3], "r": 100, "c": 100, "location": [0, 0]}
                    ],
                    "offset": [0, 0],
                    "dimenstion": [300, 300],
                }
            ],
            "entanglement_zones": [
                {
                    "zone_id": 0,
                    "slms": [
                        {"id": 1, "site_seperation": [12, 10], "r": 7, "c": 20, "location": [35, 307]},
                        {"id": 2, "site_seperation": [12, 10], "r": 7, "c": 20, "location": [37, 307]},
                    ],
                    "offset": [35, 307],
                    "dimension": [240, 70],
                }
            ],
            "aods": [{"id": 0, "site_seperation": 2, "r": 100, "c": 100}],
        }
        arch = from_spec_dict(spec)
        assert arch.num_rydberg_sites == 140
        assert arch.site_position(RydbergSite(0, 0, 0)) == (35.0, 307.0)

    def test_file_roundtrip(self, tmp_path):
        arch = reference_zoned_architecture()
        path = tmp_path / "arch.json"
        serialization.dump(arch, str(path))
        restored = serialization.load(str(path))
        assert restored.name == arch.name

    def test_missing_dimension_raises(self):
        with pytest.raises(ArchitectureError):
            from_spec_dict(
                {
                    "entanglement_zones": [{"zone_id": 0, "slms": []}],
                    "aods": [{"id": 0}],
                }
            )


def test_distance_helper():
    assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)
    assert distance((1.0, 1.0), (1.0, 1.0)) == 0.0
