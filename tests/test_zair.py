"""Unit tests for ZAIR instructions, programs, lowering and validation."""

import pytest

from repro.arch import RydbergSite, reference_zoned_architecture
from repro.core.model import LEFT, RIGHT, Location, location_qloc
from repro.zair import (
    ActivateInst,
    DeactivateInst,
    InitInst,
    MoveInst,
    OneQGateInst,
    QLoc,
    RearrangeJob,
    RydbergInst,
    ValidationError,
    ZAIRProgram,
    job_duration_us,
    job_max_distance_um,
    job_total_distance_um,
    lower_job,
    qloc_position,
    validate_job_ordering,
    validate_program,
)
from repro.fidelity import NEUTRAL_ATOM, movement_time_us


@pytest.fixture(scope="module")
def arch():
    return reference_zoned_architecture()


def storage_qloc(qubit, row, col):
    return QLoc(qubit, 0, row, col)


def make_job(arch, pairs):
    """Build a job from (qubit, begin(row,col in storage), end(site row,col, side))."""
    begin, end = [], []
    for qubit, (brow, bcol), (srow, scol, side) in pairs:
        begin.append(storage_qloc(qubit, brow, bcol))
        end.append(
            location_qloc(arch, qubit, Location.at_site(RydbergSite(0, srow, scol), side))
        )
    return RearrangeJob(aod_id=0, begin_locs=begin, end_locs=end)


class TestInstructions:
    def test_qloc_list_roundtrip(self):
        loc = QLoc(3, 1, 4, 5)
        assert QLoc.from_list(loc.to_list()) == loc
        assert loc.trap == (1, 4, 5)

    def test_rearrange_job_shape_check(self):
        with pytest.raises(ValueError):
            RearrangeJob(begin_locs=[QLoc(0, 0, 0, 0)], end_locs=[])

    def test_rearrange_job_qubit_order_check(self):
        with pytest.raises(ValueError):
            RearrangeJob(
                begin_locs=[QLoc(0, 0, 0, 0), QLoc(1, 0, 0, 1)],
                end_locs=[QLoc(1, 1, 0, 0), QLoc(0, 2, 0, 0)],
            )

    def test_instruction_dict_forms(self):
        init = InitInst(init_locs=[QLoc(0, 0, 0, 0)])
        assert init.to_dict()["type"] == "init"
        ryd = RydbergInst(zone_id=0, gates=[(0, 1)])
        assert ryd.to_dict()["gates"] == [[0, 1]]
        one_q = OneQGateInst(locs=[QLoc(0, 0, 0, 0)], unitaries=[(0.1, 0.2, 0.3)])
        assert one_q.num_gates == 1
        move = MoveInst(row_id=[0], row_y_begin=[0.0], row_y_end=[5.0])
        assert move.max_displacement_um == 5.0
        assert ActivateInst().to_dict()["type"] == "activate"
        assert DeactivateInst().to_dict()["type"] == "deactivate"

    def test_job_duration_property(self):
        job = RearrangeJob(begin_time=10.0, end_time=25.0)
        assert job.duration_us == 15.0


class TestLowering:
    def test_positions(self, arch):
        assert qloc_position(arch, QLoc(0, 0, 99, 1)) == (3.0, 297.0)
        assert qloc_position(arch, QLoc(0, 1, 0, 0)) == (35.0, 307.0)

    def test_distances_and_duration(self, arch):
        job = make_job(arch, [(0, (99, 0), (0, 0, LEFT))])
        distance = job_max_distance_um(arch, job)
        assert distance == pytest.approx((35.0**2 + 10.0**2) ** 0.5)
        assert job_total_distance_um(arch, job) == pytest.approx(distance)
        expected = 2 * NEUTRAL_ATOM.t_transfer_us + movement_time_us(distance)
        assert job_duration_us(arch, job) == pytest.approx(expected)

    def test_lowering_single_row_pickup(self, arch):
        job = make_job(arch, [(0, (99, 0), (0, 0, LEFT)), (1, (99, 3), (0, 0, RIGHT))])
        insts = lower_job(arch, job)
        kinds = [type(i).__name__ for i in insts]
        assert kinds == ["ActivateInst", "MoveInst", "DeactivateInst"]
        activate = insts[0]
        assert len(activate.col_id) == 2

    def test_lowering_multi_row_pickup_inserts_parking(self, arch):
        job = make_job(
            arch,
            [(0, (99, 0), (0, 0, LEFT)), (1, (98, 5), (0, 1, LEFT))],
        )
        insts = lower_job(arch, job)
        kinds = [type(i).__name__ for i in insts]
        # Two activations (one per source row) with a parking move between them.
        assert kinds.count("ActivateInst") == 2
        assert kinds.count("MoveInst") >= 2
        assert kinds[-1] == "DeactivateInst"

    def test_empty_job_lowers_to_nothing(self, arch):
        assert lower_job(arch, RearrangeJob()) == []


class TestJobOrderingValidation:
    def test_compatible_job_passes(self, arch):
        job = make_job(arch, [(0, (99, 0), (0, 0, LEFT)), (1, (99, 10), (0, 1, LEFT))])
        validate_job_ordering(arch, job)

    def test_crossing_columns_rejected(self, arch):
        job = make_job(arch, [(0, (99, 0), (0, 5, LEFT)), (1, (99, 10), (0, 1, LEFT))])
        with pytest.raises(ValidationError):
            validate_job_ordering(arch, job)

    def test_column_merge_rejected(self, arch):
        # Two qubits start in different AOD columns but end at the same x.
        begin = [storage_qloc(0, 99, 0), storage_qloc(1, 99, 10)]
        end = [storage_qloc(0, 50, 5), storage_qloc(1, 51, 5)]
        with pytest.raises(ValidationError):
            validate_job_ordering(arch, RearrangeJob(begin_locs=begin, end_locs=end))

    def test_shared_row_must_stay_shared(self, arch):
        begin = [storage_qloc(0, 99, 0), storage_qloc(1, 99, 10)]
        end = [storage_qloc(0, 98, 0), storage_qloc(1, 97, 10)]
        with pytest.raises(ValidationError):
            validate_job_ordering(arch, RearrangeJob(begin_locs=begin, end_locs=end))


class TestProgramValidation:
    def build_valid_program(self, arch):
        program = ZAIRProgram(num_qubits=2, architecture_name=arch.name)
        program.instructions.append(
            InitInst(init_locs=[storage_qloc(0, 99, 0), storage_qloc(1, 99, 1)])
        )
        job = make_job(arch, [(0, (99, 0), (0, 0, LEFT)), (1, (99, 1), (0, 0, RIGHT))])
        program.instructions.append(job)
        program.instructions.append(RydbergInst(zone_id=0, gates=[(0, 1)]))
        return program

    def test_valid_program_passes(self, arch):
        validate_program(arch, self.build_valid_program(arch))

    def test_program_must_start_with_init(self, arch):
        program = ZAIRProgram(num_qubits=1)
        program.instructions.append(RydbergInst())
        with pytest.raises(ValidationError):
            validate_program(arch, program)

    def test_duplicate_init_trap_rejected(self, arch):
        program = ZAIRProgram(num_qubits=2)
        program.instructions.append(
            InitInst(init_locs=[storage_qloc(0, 0, 0), storage_qloc(1, 0, 0)])
        )
        with pytest.raises(ValidationError):
            validate_program(arch, program)

    def test_pickup_from_wrong_trap_rejected(self, arch):
        program = self.build_valid_program(arch)
        bad_job = make_job(arch, [(0, (98, 0), (0, 1, LEFT))])
        program.instructions.append(bad_job)
        with pytest.raises(ValidationError):
            validate_program(arch, program)

    def test_dropoff_on_occupied_trap_rejected(self, arch):
        program = ZAIRProgram(num_qubits=2)
        program.instructions.append(
            InitInst(init_locs=[storage_qloc(0, 99, 0), storage_qloc(1, 99, 1)])
        )
        job = RearrangeJob(
            begin_locs=[storage_qloc(0, 99, 0)],
            end_locs=[storage_qloc(0, 99, 1)],
        )
        program.instructions.append(job)
        with pytest.raises(ValidationError):
            validate_program(arch, program)

    def test_rydberg_on_mismatched_sites_rejected(self, arch):
        program = ZAIRProgram(num_qubits=2)
        program.instructions.append(
            InitInst(init_locs=[storage_qloc(0, 99, 0), storage_qloc(1, 99, 1)])
        )
        job = make_job(arch, [(0, (99, 0), (0, 0, LEFT)), (1, (99, 1), (0, 1, RIGHT))])
        program.instructions.append(job)
        program.instructions.append(RydbergInst(zone_id=0, gates=[(0, 1)]))
        with pytest.raises(ValidationError):
            validate_program(arch, program)

    def test_rydberg_on_storage_qubits_rejected(self, arch):
        program = ZAIRProgram(num_qubits=2)
        program.instructions.append(
            InitInst(init_locs=[storage_qloc(0, 99, 0), storage_qloc(1, 99, 1)])
        )
        program.instructions.append(RydbergInst(zone_id=0, gates=[(0, 1)]))
        with pytest.raises(ValidationError):
            validate_program(arch, program)


class TestProgramStatistics:
    def test_counts_and_final_locations(self, arch):
        program = ZAIRProgram(num_qubits=2)
        program.instructions.append(
            InitInst(init_locs=[storage_qloc(0, 99, 0), storage_qloc(1, 99, 1)])
        )
        job = make_job(arch, [(0, (99, 0), (0, 0, LEFT)), (1, (99, 1), (0, 0, RIGHT))])
        job.begin_time, job.end_time = 0.0, 100.0
        program.instructions.append(job)
        program.instructions.append(
            RydbergInst(zone_id=0, gates=[(0, 1)], begin_time=100.0, end_time=100.36)
        )
        program.instructions.append(
            OneQGateInst(
                locs=[location_qloc(arch, 0, Location.at_site(RydbergSite(0, 0, 0), LEFT))],
                unitaries=[(0.0, 0.0, 0.0)],
                begin_time=100.36,
                end_time=152.36,
            )
        )
        assert program.num_rydberg_stages == 1
        assert program.num_2q_gates == 1
        assert program.num_1q_gates == 1
        assert program.num_movements == 2
        assert program.duration_us == pytest.approx(152.36)
        assert program.num_zair_instructions == 3
        final = program.final_locations()
        assert final[0].slm_id == 1
        assert final[1].slm_id == 2
        text = program.to_json()
        assert '"rearrangeJob"' in text

    def test_missing_init_raises(self):
        program = ZAIRProgram(num_qubits=1)
        with pytest.raises(ValueError):
            _ = program.init


# ---------------------------------------------------------------------------
# Baseline-backend instructions: gate layers, global pulses, transfer epochs
# ---------------------------------------------------------------------------

from repro.fidelity.params import SC_GRID  # noqa: E402
from repro.zair import (  # noqa: E402
    ArrayMoveInst,
    FixedGate,
    GateLayerInst,
    GlobalPulseInst,
    TransferEpochInst,
    interpret_program,
)


def coupling_program(gates, num_qubits=3, edges=((0, 1), (1, 2))):
    layer = GateLayerInst(
        gates=gates,
        begin_time=min((g.begin_time for g in gates), default=0.0),
        end_time=max((g.end_time for g in gates), default=0.0),
    )
    return ZAIRProgram(
        num_qubits=num_qubits,
        architecture_name="sc-test",
        instructions=[layer],
        coupling_edges=[tuple(e) for e in edges],
    )


class TestAbstractValidation:
    def test_coupling_program_passes(self):
        program = coupling_program(
            [
                FixedGate("1q", (0,), 0.0, 1.0),
                FixedGate("2q", (0, 1), 1.0, 2.0),
                FixedGate("swap", (1, 2), 3.0, 6.0),
            ]
        )
        validate_program(None, program)

    def test_off_coupling_gate_rejected(self):
        program = coupling_program([FixedGate("2q", (0, 2), 0.0, 2.0)])
        with pytest.raises(ValidationError, match="not an edge"):
            validate_program(None, program)

    def test_overlapping_gates_on_one_qubit_rejected(self):
        program = coupling_program(
            [FixedGate("2q", (0, 1), 0.0, 2.0), FixedGate("1q", (1,), 1.0, 1.0)]
        )
        with pytest.raises(ValidationError, match="still busy"):
            validate_program(None, program)

    def test_out_of_range_qubit_rejected(self):
        program = coupling_program([FixedGate("1q", (7,), 0.0, 1.0)])
        with pytest.raises(ValidationError, match="out of range"):
            validate_program(None, program)

    def test_global_pulse_requires_gate_qubits_active(self):
        program = ZAIRProgram(
            num_qubits=4,
            instructions=[GlobalPulseInst(gates=[(0, 1)], active_qubits=[0])],
        )
        with pytest.raises(ValidationError, match="active_qubits"):
            validate_program(None, program)

    def test_index_instructions_rejected_in_location_program(self, arch):
        program = ZAIRProgram(
            num_qubits=1,
            instructions=[
                InitInst(init_locs=[storage_qloc(0, 0, 0)]),
                GlobalPulseInst(gates=[], active_qubits=[0]),
            ],
        )
        with pytest.raises(ValidationError, match="no trap semantics"):
            validate_program(arch, program)

    def test_location_program_requires_architecture(self):
        program = ZAIRProgram(
            num_qubits=1, instructions=[InitInst(init_locs=[storage_qloc(0, 0, 0)])]
        )
        with pytest.raises(ValidationError, match="architecture is required"):
            validate_program(None, program)


class TestTransferEpoch:
    def test_occupancy_replayed_without_aod_ordering(self, arch):
        # Two crossing movements: invalid as one RearrangeJob, fine as an
        # abstract transfer epoch.
        begin = [storage_qloc(0, 0, 0), storage_qloc(1, 0, 1)]
        end = [storage_qloc(0, 5, 1), storage_qloc(1, 5, 0)]
        program = ZAIRProgram(
            num_qubits=2,
            instructions=[
                InitInst(init_locs=list(begin)),
                TransferEpochInst(begin_locs=begin, end_locs=end),
            ],
        )
        validate_program(arch, program)
        with pytest.raises(ValidationError):
            validate_program(
                arch,
                ZAIRProgram(
                    num_qubits=2,
                    instructions=[
                        InitInst(init_locs=list(begin)),
                        RearrangeJob(begin_locs=begin, end_locs=end),
                    ],
                ),
            )

    def test_drop_on_occupied_trap_rejected(self, arch):
        program = ZAIRProgram(
            num_qubits=2,
            instructions=[
                InitInst(init_locs=[storage_qloc(0, 0, 0), storage_qloc(1, 0, 1)]),
                TransferEpochInst(
                    begin_locs=[storage_qloc(0, 0, 0)],
                    end_locs=[storage_qloc(0, 0, 1)],
                ),
            ],
        )
        with pytest.raises(ValidationError, match="occupied trap"):
            validate_program(arch, program)

    def test_transfer_count_override_bounds(self, arch):
        epoch = TransferEpochInst(
            begin_locs=[storage_qloc(0, 0, 0)],
            end_locs=[storage_qloc(0, 1, 0)],
            transfer_count=9,
        )
        program = ZAIRProgram(
            num_qubits=1,
            instructions=[InitInst(init_locs=[storage_qloc(0, 0, 0)]), epoch],
        )
        with pytest.raises(ValidationError, match="claims"):
            validate_program(arch, program)
        epoch.transfer_count = 0
        validate_program(arch, program)
        assert epoch.num_transfers == 0


class TestInterpreter:
    def test_neutral_atom_replay_counts(self, arch):
        params = NEUTRAL_ATOM
        epoch = TransferEpochInst(
            begin_locs=[storage_qloc(0, 0, 0)],
            end_locs=[
                location_qloc(arch, 0, Location.at_site(RydbergSite(0, 0, 0), LEFT))
            ],
            begin_time=0.0,
            end_time=40.0,
        )
        pulse = RydbergInst(zone_id=0, gates=[(0, 1)], begin_time=40.0, end_time=40.36)
        init = InitInst(
            init_locs=[
                storage_qloc(0, 0, 0),
                location_qloc(arch, 1, Location.at_site(RydbergSite(0, 0, 0), RIGHT)),
                location_qloc(arch, 2, Location.at_site(RydbergSite(0, 3, 3), LEFT)),
            ]
        )
        program = ZAIRProgram(num_qubits=3, instructions=[init, epoch, pulse])
        validate_program(arch, program)
        replay = interpret_program(program, architecture=arch, params=params)
        metrics = replay.metrics
        assert metrics.num_2q_gates == 1
        assert metrics.num_transfers == 2
        assert metrics.num_movements == 1
        # Qubit 2 idles inside the illuminated zone during the pulse.
        assert metrics.num_excitations == 1
        assert metrics.duration_us == pytest.approx(40.36)
        assert metrics.qubit_busy_us[0] == pytest.approx(
            2.0 * params.t_transfer_us + params.t_2q_us
        )
        assert metrics.qubit_busy_us[2] == 0.0

    def test_superconducting_replay_uses_sc_model(self):
        program = coupling_program(
            [FixedGate("2q", (0, 1), 0.0, SC_GRID.t_2q_us)], num_qubits=3
        )
        replay = interpret_program(program, params=SC_GRID)
        # Only the touched qubits decohere (legacy transpiler convention).
        assert replay.metrics.num_qubits == 2
        assert replay.fidelity.excitation == 1.0
        assert replay.fidelity.atom_transfer == 1.0
        assert replay.fidelity.two_q_gate == pytest.approx(SC_GRID.f_2q)

    def test_global_pulse_replay(self):
        params = NEUTRAL_ATOM
        program = ZAIRProgram(
            num_qubits=5,
            instructions=[
                GlobalPulseInst(
                    gates=[(0, 1)],
                    active_qubits=[0, 1, 2],
                    extra_1q_gates=4,
                    begin_time=0.0,
                    end_time=params.t_2q_us,
                ),
                ArrayMoveInst(distance_um=20.0, begin_time=1.0, end_time=2.0),
            ],
        )
        validate_program(None, program)
        replay = interpret_program(program, params=params)
        assert replay.metrics.num_2q_gates == 1
        assert replay.metrics.num_1q_gates == 4
        assert replay.metrics.num_excitations == 2
        assert replay.metrics.num_rydberg_stages == 1
        assert replay.metrics.qubit_busy_us[2] == pytest.approx(params.t_2q_us)
