"""Tests for the explicit pass pipeline of the ZAC compiler."""

import pytest

from repro.arch import reference_zoned_architecture
from repro.circuits.library import get_benchmark
from repro.core import ZACCompiler, ZACConfig
from repro.core.pipeline import (
    FidelityPass,
    Pass,
    PassContext,
    PassPipeline,
    PipelineError,
    PlacePass,
    PreprocessPass,
    RoutePass,
    SchedulePass,
    default_pipeline,
)

STANDARD_ORDER = ["preprocess", "place", "route", "schedule", "fidelity"]


@pytest.fixture(scope="module")
def arch():
    return reference_zoned_architecture()


@pytest.fixture(scope="module")
def bv14():
    return get_benchmark("bv_n14")


class TestComposition:
    def test_default_pipeline_order(self):
        assert default_pipeline().names == STANDARD_ORDER

    def test_ablation_configs_compose_different_pipelines(self):
        full = default_pipeline(ZACConfig.full())
        vanilla = default_pipeline(ZACConfig.vanilla())
        assert full.names == vanilla.names == STANDARD_ORDER
        assert full.passes[1].initial == "sa"
        assert vanilla.passes[1].initial == "trivial"

    def test_unknown_initial_strategy_rejected(self):
        with pytest.raises(ValueError):
            PlacePass(initial="oracle")

    def test_replace_and_with_pass(self):
        class ExtraPass(Pass):
            name = "extra"

            def run(self, ctx):
                pass

        pipeline = default_pipeline().with_pass(ExtraPass(), after="place")
        assert pipeline.names == ["preprocess", "place", "extra", "route", "schedule", "fidelity"]
        pipeline = pipeline.replace("extra", PlacePass(initial="trivial"))
        assert pipeline.names.count("place") == 2
        with pytest.raises(KeyError):
            default_pipeline().replace("nonexistent", ExtraPass())
        with pytest.raises(ValueError):
            default_pipeline().with_pass(ExtraPass(), before="place", after="place")


class TestHooks:
    def test_pre_post_hook_ordering(self, arch, bv14):
        events = []
        pipeline = default_pipeline()
        pipeline.add_pre_hook(lambda p, ctx: events.append(("pre", p.name)))
        pipeline.add_post_hook(lambda p, ctx: events.append(("post", p.name)))
        ZACCompiler(arch, pipeline=pipeline).compile(bv14)
        expected = [
            (kind, name) for name in STANDARD_ORDER for kind in ("pre", "post")
        ]
        assert events == expected

    def test_post_hook_sees_pass_output(self, arch, bv14):
        observed = {}

        def capture(pass_obj, ctx):
            if pass_obj.name == "place":
                observed["plan"] = ctx.plan

        pipeline = default_pipeline().add_post_hook(capture)
        result = ZACCompiler(arch, pipeline=pipeline).compile(bv14)
        assert observed["plan"] is result.plan


class TestExecution:
    def test_custom_noop_pass_preserves_result(self, arch, bv14):
        class NoopPass(Pass):
            name = "noop"

            def run(self, ctx):
                ctx.data["noop_ran"] = True

        pipeline = default_pipeline().with_pass(NoopPass(), before="fidelity")
        custom = ZACCompiler(arch, pipeline=pipeline).compile(bv14)
        default = ZACCompiler(arch).compile(bv14)
        assert custom.total_fidelity == pytest.approx(default.total_fidelity)
        assert custom.duration_us == pytest.approx(default.duration_us)

    def test_missing_prerequisite_raises_pipeline_error(self, arch, bv14):
        broken = PassPipeline([PreprocessPass(), RoutePass()])  # no place pass
        with pytest.raises(PipelineError, match="plan"):
            ZACCompiler(arch, pipeline=broken).compile(bv14)

    def test_phase_times_recorded_per_pass(self, arch, bv14):
        result = ZACCompiler(arch).compile(bv14)
        times = result.metrics.phase_times_s
        assert set(STANDARD_ORDER) <= set(times)
        assert all(times[name] >= 0.0 for name in STANDARD_ORDER)
        assert sum(times[name] for name in STANDARD_ORDER) <= result.metrics.compile_time_s

    def test_prebuilt_routing_matches_inline_routing(self, arch, bv14):
        """The route pass prebuilding jobs must not change the schedule."""
        inline = PassPipeline(
            [PreprocessPass(), PlacePass(), SchedulePass(), FidelityPass()]
        )
        with_route = default_pipeline()
        a = ZACCompiler(arch, pipeline=inline).compile(bv14)
        b = ZACCompiler(arch, pipeline=with_route).compile(bv14)
        assert a.duration_us == pytest.approx(b.duration_us)
        assert a.total_fidelity == pytest.approx(b.total_fidelity)
        assert a.metrics.num_movements == b.metrics.num_movements
        assert len(a.program.instructions) == len(b.program.instructions)

    def test_compile_staged_skips_nothing(self, arch, bv14):
        from repro.circuits.scheduling import preprocess

        staged = preprocess(bv14)
        result = ZACCompiler(arch).compile_staged(staged, circuit_name="bv_n14")
        assert result.circuit_name == "bv_n14"
        assert result.metrics.num_2q_gates == 13

    def test_context_require_lists_missing_fields(self, arch):
        ctx = PassContext(architecture=arch, config=ZACConfig())
        with pytest.raises(PipelineError, match="staged"):
            ctx.require("staged", "architecture")
