"""Equivalence tests for the optimised hot paths.

Every fast implementation (incremental SA cost, vectorized conflict graph,
heap-based job partitioning) is checked against its retained naive reference
on seeded randomized instances: the fast paths must be *exactly* as correct,
not merely approximately.
"""

import random

import numpy as np
import pytest

from repro.arch import (
    RydbergSite,
    StorageTrap,
    reference_zoned_architecture,
    small_dual_zone_architecture,
)
from repro.core import ZACConfig
from repro.core.model import LEFT, RIGHT, Location, Movement
from repro.core.placement.cost import IncrementalPlacementCost, initial_placement_cost
from repro.core.placement.initial import (
    sa_placement,
    trivial_placement,
    weighted_gate_list,
)
from repro.core.routing.conflicts import conflict_graph, conflict_graph_naive
from repro.core.routing.jobs import partition_movements


@pytest.fixture(scope="module")
def arch():
    return reference_zoned_architecture()


def random_movements(rng: random.Random, n: int) -> list[Movement]:
    """Random storage<->site movements (the two epoch shapes routing sees)."""
    movements = []
    for qubit in range(n):
        storage = Location.at_storage(
            StorageTrap(0, rng.randrange(100), rng.randrange(100))
        )
        site = Location.at_site(
            RydbergSite(0, rng.randrange(7), rng.randrange(20)),
            rng.choice([LEFT, RIGHT]),
        )
        if rng.random() < 0.5:
            movements.append(Movement(qubit, storage, site))
        else:
            movements.append(Movement(qubit, site, storage))
    return movements


class TestConflictGraphEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_vectorized_matches_naive(self, arch, seed):
        rng = random.Random(seed)
        movements = random_movements(rng, rng.randint(2, 40))
        assert conflict_graph(arch, movements) == conflict_graph_naive(arch, movements)

    def test_coincident_sources_and_destinations(self, arch):
        # Duplicated rows/columns exercise the tolerance branches.
        movements = [
            Movement(0, Location.at_storage(StorageTrap(0, 99, 0)),
                     Location.at_site(RydbergSite(0, 0, 0), LEFT)),
            Movement(1, Location.at_storage(StorageTrap(0, 99, 5)),
                     Location.at_site(RydbergSite(0, 0, 0), RIGHT)),
            Movement(2, Location.at_storage(StorageTrap(0, 98, 0)),
                     Location.at_site(RydbergSite(0, 1, 0), LEFT)),
            Movement(3, Location.at_storage(StorageTrap(0, 99, 0)),
                     Location.at_site(RydbergSite(0, 2, 3), LEFT)),
        ]
        assert conflict_graph(arch, movements) == conflict_graph_naive(arch, movements)

    def test_trivial_sizes(self, arch):
        assert conflict_graph(arch, []) == []
        single = random_movements(random.Random(0), 1)
        assert conflict_graph(arch, single) == [set()]


class TestPartitionEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_fast_partition_matches_naive(self, arch, seed):
        rng = random.Random(seed)
        movements = random_movements(rng, rng.randint(2, 35))
        fast = partition_movements(arch, movements, fast=True)
        naive = partition_movements(arch, movements, fast=False)
        assert fast == naive

    def test_partition_deterministic_across_runs(self, arch):
        movements = random_movements(random.Random(42), 25)
        first = partition_movements(arch, movements)
        for _ in range(3):
            assert partition_movements(arch, movements) == first


def random_index_instance(arch, rng: random.Random, num_qubits: int):
    """A trap universe + qubit index array + weighted gate list for the tracker."""
    chosen = rng.sample(
        [(r, c) for r in range(80, 100) for c in range(100)], 3 * num_qubits
    )
    universe = [StorageTrap(0, r, c) for r, c in chosen]
    qubit_trap = np.array(
        rng.sample(range(len(universe)), num_qubits), dtype=np.intp
    )
    gates = []
    for _ in range(rng.randint(1, 3 * num_qubits)):
        q, q2 = rng.sample(range(num_qubits), 2)
        gates.append((rng.choice([1.0, 0.9, 0.5, 0.1]), q, q2))
    return universe, qubit_trap, gates


def random_index_moves(rng, qubit_trap, num_traps, count):
    """Yield random jump/swap mutations of ``qubit_trap`` plus the moved tuple."""
    occupied = {int(i) for i in qubit_trap}
    free = [i for i in range(num_traps) if i not in occupied]
    num_qubits = qubit_trap.size
    for _ in range(count):
        if free and rng.random() < 0.5:
            qubit = rng.randrange(num_qubits)
            slot = rng.randrange(len(free))
            old = int(qubit_trap[qubit])
            qubit_trap[qubit] = free[slot]
            free[slot] = old
            yield (qubit,)
        else:
            q, q2 = rng.sample(range(num_qubits), 2)
            qubit_trap[q], qubit_trap[q2] = int(qubit_trap[q2]), int(qubit_trap[q])
            yield (q, q2)


class TestIncrementalCostEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_tracker_matches_naive_over_random_moves(self, arch, seed):
        rng = random.Random(seed)
        num_qubits = rng.randint(4, 20)
        universe, qubit_trap, gates = random_index_instance(arch, rng, num_qubits)
        tracker = IncrementalPlacementCost(arch, universe, qubit_trap, gates)

        def naive_total():
            positions = {
                q: arch.trap_position(universe[int(qubit_trap[q])])
                for q in range(num_qubits)
            }
            return initial_placement_cost(arch, positions, gates)

        assert tracker.total == pytest.approx(naive_total(), abs=1e-9)
        for moved in random_index_moves(rng, qubit_trap, len(universe), 60):
            tracker.reevaluate(moved)
            assert tracker.total == pytest.approx(naive_total(), abs=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_vectorized_deltas_bitwise_match_scalar_twin(self, arch, seed):
        """The gathered fast path and its scalar twin must agree to the last ulp."""
        rng = random.Random(100 + seed)
        num_qubits = rng.randint(4, 20)
        universe, qubit_trap, gates = random_index_instance(arch, rng, num_qubits)
        state_vec = qubit_trap.copy()
        state_sca = qubit_trap.copy()
        vec = IncrementalPlacementCost(arch, universe, state_vec, gates, vectorized=True)
        sca = IncrementalPlacementCost(arch, universe, state_sca, gates, vectorized=False)
        assert vec.total == sca.total
        # Drive both trackers with the identical move sequence (same seed).
        gen_vec = random_index_moves(random.Random(seed), state_vec, len(universe), 80)
        gen_sca = random_index_moves(random.Random(seed), state_sca, len(universe), 80)
        for moved_v, moved_s in zip(gen_vec, gen_sca):
            assert moved_v == moved_s
            delta_v, _ = vec.reevaluate(moved_v)
            delta_s, _ = sca.reevaluate(moved_s)
            assert delta_v == delta_s  # bitwise, not approx
            assert vec.total == sca.total
            assert vec.gate_costs == sca.gate_costs

    def test_undo_restores_cost_state(self, arch):
        rng = random.Random(7)
        universe, qubit_trap, gates = random_index_instance(arch, rng, 10)
        tracker = IncrementalPlacementCost(arch, universe, qubit_trap, gates)
        before_total = tracker.total
        before_costs = list(tracker.gate_costs)
        old_index = int(qubit_trap[3])
        occupied = {int(i) for i in qubit_trap}
        fresh = next(i for i in range(len(universe)) if i not in occupied)
        qubit_trap[3] = fresh
        delta, undo = tracker.reevaluate((3,))
        assert tracker.total == pytest.approx(before_total + delta, abs=1e-12)
        undo()
        qubit_trap[3] = old_index
        assert tracker.total == pytest.approx(before_total, abs=1e-12)
        assert tracker.gate_costs == before_costs

    def test_multi_zone_falls_back_to_general_path(self):
        arch = small_dual_zone_architecture()
        rng = random.Random(3)
        num_qubits = 8
        rows, cols = arch.storage_shape(0)
        chosen = rng.sample([(r, c) for r in range(rows) for c in range(cols)], 2 * num_qubits)
        universe = [StorageTrap(0, r, c) for r, c in chosen]
        qubit_trap = np.arange(num_qubits, dtype=np.intp)
        gates = [(1.0, 0, 1), (0.9, 2, 3), (0.5, 4, 5), (0.1, 6, 7), (1.0, 1, 6)]
        tracker = IncrementalPlacementCost(arch, universe, qubit_trap, gates)
        assert tracker._single_zone is None
        positions = {
            q: arch.trap_position(universe[int(qubit_trap[q])]) for q in range(num_qubits)
        }
        assert tracker.total == pytest.approx(
            initial_placement_cost(arch, positions, gates), abs=1e-9
        )


class TestSAPlacementFastVsNaive:
    def test_both_paths_no_worse_than_trivial(self, arch):
        staged_gates = [[(0, 5), (1, 4)], [(2, 3)], [(0, 2)]]
        weighted = weighted_gate_list(staged_gates)

        def cost_of(placement):
            positions = {q: arch.trap_position(t) for q, t in placement.items()}
            return initial_placement_cost(arch, positions, weighted)

        trivial_cost = cost_of(trivial_placement(arch, 6))
        for fast in (True, False):
            config = ZACConfig(sa_iterations=300, seed=5, use_fast_paths=fast)
            annealed = sa_placement(arch, 6, staged_gates, config)
            assert cost_of(annealed) <= trivial_cost + 1e-9
            assert len(set(annealed.values())) == 6

    def test_fast_path_deterministic(self, arch):
        staged_gates = [[(0, 3), (1, 2)]]
        config = ZACConfig(sa_iterations=150, seed=11)
        a = sa_placement(arch, 4, staged_gates, config)
        b = sa_placement(arch, 4, staged_gates, config)
        assert a == b

    def test_fast_path_never_calls_full_cost_function(self, arch, monkeypatch):
        """The Metropolis loop must price moves incrementally only."""
        import repro.core.placement.initial as initial_module

        def forbidden(*args, **kwargs):
            raise AssertionError("full-circuit cost evaluated on the fast path")

        monkeypatch.setattr(initial_module, "initial_placement_cost", forbidden)
        staged_gates = [[(0, 5), (1, 4)], [(2, 3)]]
        placement = sa_placement(
            arch, 6, staged_gates, ZACConfig(sa_iterations=200, seed=1)
        )
        assert len(set(placement.values())) == 6
