"""Tests for the public API: backend registry, repro.compile, serialization."""

import dataclasses
import json

import pytest

import repro
from repro.api import (
    UnknownBackendError,
    available_backends,
    backend_spec,
    compile_many,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.arch import reference_zoned_architecture
from repro.baselines import IdealBound, NALACCompiler, SuperconductingCompiler
from repro.baselines.ideal import PERFECT_MOVEMENT
from repro.baselines.monolithic.atomique import AtomiqueCompiler
from repro.baselines.monolithic.enola import EnolaCompiler
from repro.circuits.library import get_benchmark
from repro.core import ZACCompiler, ZACConfig
from repro.core.result import (
    CompileResult,
    load_results,
    merge_results,
    save_results,
)

BUILTIN_BACKENDS = ("zac", "enola", "atomique", "nalac", "sc", "ideal")


@pytest.fixture(scope="module")
def bv14():
    return get_benchmark("bv_n14")


@pytest.fixture(scope="module")
def arch():
    return reference_zoned_architecture()


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_BACKENDS) <= set(available_backends())

    def test_unknown_backend_raises(self, bv14):
        with pytest.raises(UnknownBackendError) as excinfo:
            repro.compile(bv14, backend="no_such_backend")
        # The error names the offender, lists the alternatives, and is a KeyError.
        assert "no_such_backend" in str(excinfo.value)
        assert "zac" in str(excinfo.value)
        assert isinstance(excinfo.value, KeyError)

    def test_unknown_option_raises(self, bv14):
        with pytest.raises(TypeError, match="zac"):
            create_backend("zac", not_an_option=1)

    def test_duplicate_registration_rejected(self):
        spec = backend_spec("zac")
        with pytest.raises(ValueError):
            register_backend("zac", spec.factory)

    def test_custom_backend_round_trip(self, bv14):
        class EchoCompiler:
            name = "Echo"

            def compile(self, circuit):
                return EnolaCompiler().compile(circuit)

        register_backend("echo-test", lambda arch, options: EchoCompiler())
        try:
            assert "echo-test" in available_backends()
            result = repro.compile(bv14, backend="echo-test")
            assert result.total_fidelity > 0
        finally:
            unregister_backend("echo-test")
        assert "echo-test" not in available_backends()

    def test_backend_descriptions_present(self):
        for name in BUILTIN_BACKENDS:
            assert backend_spec(name).description

    def test_sc_variant_validation(self):
        with pytest.raises(ValueError):
            create_backend("sc", variant="trapped_ion")

    def test_sc_rejects_architecture(self, arch):
        with pytest.raises(ValueError):
            create_backend("sc", arch=arch)


class TestCompileParity:
    """repro.compile(circuit, backend=b) matches the direct compiler calls."""

    def direct_compilers(self, arch):
        return {
            "zac": ZACCompiler(arch),
            "enola": EnolaCompiler(),
            "atomique": AtomiqueCompiler(),
            "nalac": NALACCompiler(arch),
            "sc": SuperconductingCompiler.grid(),
            "ideal": IdealBound(PERFECT_MOVEMENT, arch),
        }

    @pytest.mark.parametrize("backend", BUILTIN_BACKENDS)
    def test_parity_with_direct_compiler(self, backend, arch, bv14):
        kwargs = {"arch": arch} if backend in ("zac", "nalac", "ideal") else {}
        via_registry = repro.compile(bv14, backend=backend, **kwargs)
        direct = self.direct_compilers(arch)[backend].compile(bv14)
        assert isinstance(via_registry, CompileResult)
        assert via_registry.total_fidelity == pytest.approx(direct.total_fidelity)
        assert via_registry.duration_us == pytest.approx(direct.duration_us)
        assert via_registry.metrics.num_2q_gates == direct.metrics.num_2q_gates
        assert via_registry.metrics.num_transfers == direct.metrics.num_transfers

    def test_benchmark_name_accepted(self, bv14):
        by_name = repro.compile("bv_n14", backend="enola")
        by_circuit = repro.compile(bv14, backend="enola")
        assert by_name.total_fidelity == pytest.approx(by_circuit.total_fidelity)

    def test_zac_options_forwarded(self, arch, bv14):
        vanilla = repro.compile(bv14, backend="zac", arch=arch, config=ZACConfig.vanilla())
        full = repro.compile(bv14, backend="zac", arch=arch, config=ZACConfig.full())
        assert full.total_fidelity >= vanilla.total_fidelity * 0.999


class TestCompileMany:
    def test_order_and_parity(self, arch):
        names = ["bv_n14", "ghz_n23"]
        results = compile_many(names, backend="nalac", arch=arch)
        assert [r.circuit_name for r in results] == names
        singles = [repro.compile(n, backend="nalac", arch=arch) for n in names]
        for batch, single in zip(results, singles):
            assert batch.total_fidelity == pytest.approx(single.total_fidelity)

    def test_parallel_matches_serial(self, arch):
        names = ["bv_n14", "ghz_n23"]
        serial = compile_many(names, backend="zac", arch=arch, parallel=0)
        parallel = compile_many(names, backend="zac", arch=arch, parallel=2)
        for a, b in zip(serial, parallel):
            assert a.circuit_name == b.circuit_name
            assert a.total_fidelity == pytest.approx(b.total_fidelity)
            assert a.metrics.num_movements == b.metrics.num_movements


class TestSerialization:
    @pytest.mark.parametrize("backend", BUILTIN_BACKENDS)
    def test_json_round_trip(self, backend, bv14):
        result = repro.compile(bv14, backend=backend)
        restored = CompileResult.from_json(result.to_json())
        # Byte-identical re-serialization and field-level equality.
        assert restored.to_json() == result.to_json()
        assert restored.metrics == result.metrics
        assert restored.fidelity == result.fidelity
        assert restored.summary() == result.summary()

    def test_from_dict_drops_artifacts(self, bv14):
        result = repro.compile(bv14, backend="zac")
        assert result.program is not None
        restored = CompileResult.from_dict(result.to_dict())
        assert restored.program is None and restored.staged is None

    def test_to_dict_include_program(self, bv14):
        result = repro.compile(bv14, backend="zac")
        data = result.to_dict(include_program=True)
        assert data["program"] == result.program.to_dict()
        assert "program" not in result.to_dict()

    def test_qubit_busy_keys_restored_as_ints(self, bv14):
        result = repro.compile(bv14, backend="enola")
        restored = CompileResult.from_dict(json.loads(result.to_json()))
        assert all(isinstance(q, int) for q in restored.metrics.qubit_busy_us)

    def test_save_load_merge(self, tmp_path, bv14):
        zac = repro.compile(bv14, backend="zac")
        enola = repro.compile(bv14, backend="enola")
        shard_a, shard_b = tmp_path / "a.json", tmp_path / "b.json"
        save_results(str(shard_a), [zac])
        save_results(str(shard_b), [enola, zac])  # zac duplicated across shards
        merged = merge_results(load_results(str(shard_a)), load_results(str(shard_b)))
        assert len(merged) == 2
        assert {r.compiler_name for r in merged} == {zac.compiler_name, enola.compiler_name}

    def test_merge_keeps_same_label_different_config_runs(self, arch, bv14):
        # Both report compiler_name "Zoned-ZAC" but carry different data; a
        # sharded ablation sweep must not collapse them into one entry.
        vanilla = repro.compile(bv14, backend="zac", arch=arch, config=ZACConfig.vanilla())
        full = repro.compile(bv14, backend="zac", arch=arch, config=ZACConfig.full())
        assert vanilla.compiler_name == full.compiler_name
        merged = merge_results([vanilla], [full])
        assert len(merged) == 2

    def test_schema_version_checked(self, bv14):
        data = repro.compile(bv14, backend="enola").to_dict()
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            CompileResult.from_dict(data)

    def test_partial_result_raises_clearly(self):
        partial = CompileResult(circuit_name="x", architecture_name="y")
        with pytest.raises(ValueError, match="metrics"):
            partial.summary()
        with pytest.raises(ValueError, match="fidelity"):
            _ = partial.total_fidelity
        with pytest.raises(ValueError, match="metrics"):
            partial.to_dict()

    def test_legacy_aliases_are_compile_result(self):
        from repro.baselines import BaselineResult
        from repro.core import CompilationResult

        assert CompilationResult is CompileResult
        assert BaselineResult is CompileResult


class TestUnifiedSummary:
    def test_baseline_and_zac_summaries_share_keys(self, arch, bv14):
        zac = repro.compile(bv14, backend="zac", arch=arch)
        enola = repro.compile(bv14, backend="enola")
        assert set(zac.summary()) == set(enola.summary())
        # Baselines don't instrument phases; the columns exist and are zero.
        assert enola.summary()["time_place_s"] == 0.0
        assert zac.summary()["time_place_s"] > 0.0

    def test_record_fields_covered(self, bv14):
        summary = repro.compile(bv14, backend="nalac").summary()
        record_fields = {
            f.name
            for f in dataclasses.fields(
                __import__("repro.experiments.harness", fromlist=["RunRecord"]).RunRecord
            )
        } - {"circuit", "compiler"}
        assert record_fields <= set(summary)


class TestCLI:
    def test_compile_json(self, capsys):
        from repro.__main__ import main

        assert main(["compile", "bv_n14", "--backend", "enola", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        restored = CompileResult.from_dict(payload)
        assert restored.circuit_name == "bv_n14"
        assert 0 < restored.total_fidelity < 1

    def test_backends_listing(self, capsys):
        from repro.__main__ import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_BACKENDS:
            assert name in out

    def test_unknown_circuit_exits(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["compile", "not_a_benchmark"])

    def test_option_values_coerced(self, capsys):
        from repro.__main__ import main

        # JSON-scalar coercion: lower_jobs=false must reach ZacOptions as a bool.
        assert main(
            ["compile", "bv_n14", "--backend", "zac", "--option", "lower_jobs=false",
             "--option", "config=vanilla", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["circuit_name"] == "bv_n14"

    def test_bad_config_preset_exits(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="preset"):
            main(["compile", "bv_n14", "--backend", "zac", "--option", "config=best"])
