"""Unit tests for ASAP stage scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.scheduling import (
    OneQStage,
    RydbergStage,
    SchedulingError,
    preprocess,
    schedule_stages,
    split_oversized_stages,
)
from repro.circuits.synthesis import resynthesize


class TestScheduleStages:
    def test_rejects_unresynthesized_input(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        with pytest.raises(SchedulingError):
            schedule_stages(circ)

    def test_alternating_structure(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.cx(0, 1)
        circ.h(2)
        circ.cx(1, 2)
        staged = preprocess(circ)
        staged.validate()
        assert staged.num_rydberg_stages == 2
        assert staged.num_2q_gates == 2

    def test_qubit_disjointness_per_stage(self):
        circ = QuantumCircuit(4)
        circ.cz(0, 1)
        circ.cz(2, 3)
        circ.cz(0, 2)
        staged = preprocess(circ)
        first = staged.rydberg_stages[0]
        assert len(first.gates) == 2
        assert len(first.qubits) == 4
        second = staged.rydberg_stages[1]
        assert second.pairs == [(0, 2)]

    def test_parallel_gates_in_one_stage(self):
        circ = QuantumCircuit(6)
        for q in range(0, 6, 2):
            circ.cz(q, q + 1)
        staged = preprocess(circ)
        assert staged.num_rydberg_stages == 1
        assert len(staged.rydberg_stages[0].gates) == 3

    def test_dependency_order_preserved(self):
        circ = QuantumCircuit(2)
        circ.cz(0, 1)
        circ.h(0)
        circ.cz(0, 1)
        staged = preprocess(circ)
        kinds = [type(s).__name__ for s in staged.stages]
        assert kinds == ["RydbergStage", "OneQStage", "RydbergStage"]

    def test_gate_counts_preserved(self):
        circ = random_circuit(6, 40, seed=3)
        native = resynthesize(circ)
        staged = schedule_stages(native)
        assert staged.num_2q_gates == native.num_2q_gates
        assert staged.num_1q_gates == native.num_1q_gates

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), num_qubits=st.integers(2, 8))
    def test_property_stage_invariants(self, seed, num_qubits):
        circ = random_circuit(num_qubits, 30, seed=seed)
        staged = preprocess(circ)
        staged.validate()
        # Per-qubit CZ order must match the resynthesized circuit's order.
        native = resynthesize(circ)
        expected = [tuple(sorted(g.qubits)) for g in native if g.name == "cz"]
        produced = []
        for stage in staged.rydberg_stages:
            produced.extend(sorted(tuple(sorted(p)) for p in stage.pairs))
        assert sorted(expected) == sorted(produced)


class TestSplitOversizedStages:
    def test_splits_when_over_capacity(self):
        circ = QuantumCircuit(10)
        for q in range(0, 10, 2):
            circ.cz(q, q + 1)
        staged = preprocess(circ)
        assert len(staged.rydberg_stages[0].gates) == 5
        split = split_oversized_stages(staged, capacity=2)
        sizes = [len(s.gates) for s in split.rydberg_stages]
        assert sizes == [2, 2, 1]
        assert split.num_2q_gates == staged.num_2q_gates

    def test_no_change_when_under_capacity(self):
        circ = QuantumCircuit(4)
        circ.cz(0, 1)
        circ.cz(2, 3)
        staged = preprocess(circ)
        split = split_oversized_stages(staged, capacity=10)
        assert len(split.stages) == len(staged.stages)

    def test_rejects_nonpositive_capacity(self):
        circ = QuantumCircuit(2)
        circ.cz(0, 1)
        with pytest.raises(SchedulingError):
            split_oversized_stages(preprocess(circ), capacity=0)


class TestStageContainers:
    def test_one_q_stage_qubits(self):
        from repro.circuits.gates import Gate

        stage = OneQStage([Gate("u3", (1,), (0.1, 0.2, 0.3)), Gate("u3", (4,), (0.0, 0.0, 0.0))])
        assert stage.qubits == {1, 4}
        assert len(stage) == 2

    def test_rydberg_stage_pairs(self):
        from repro.circuits.gates import Gate

        stage = RydbergStage([Gate("cz", (0, 3)), Gate("cz", (5, 2))])
        assert stage.pairs == [(0, 3), (5, 2)]
        assert stage.qubits == {0, 2, 3, 5}
