"""Integration tests: the full ZAC pipeline on real benchmark circuits."""

import pytest

from repro.arch import (
    reference_zoned_architecture,
    small_dual_zone_architecture,
    with_num_aods,
)
from repro.circuits.library import get_benchmark, ghz, ising_chain
from repro.core import ZACCompiler, ZACConfig
from repro.zair import validate_program


@pytest.fixture(scope="module")
def arch():
    return reference_zoned_architecture()


@pytest.fixture(scope="module")
def compiled_bv(arch):
    return ZACCompiler(arch).compile(get_benchmark("bv_n14"))


class TestEndToEnd:
    def test_program_is_physically_valid(self, arch, compiled_bv):
        validate_program(arch, compiled_bv.program)

    def test_gate_counts_preserved(self, compiled_bv):
        assert compiled_bv.metrics.num_2q_gates == 13
        assert compiled_bv.program.num_2q_gates == 13
        assert compiled_bv.metrics.num_1q_gates == compiled_bv.staged.num_1q_gates

    def test_no_excitation_errors_for_zac(self, compiled_bv):
        """ZAC never leaves an idle qubit inside the illuminated zone."""
        assert compiled_bv.metrics.num_excitations == 0

    def test_fidelity_in_unit_interval(self, compiled_bv):
        assert 0.0 < compiled_bv.total_fidelity < 1.0

    def test_duration_positive_and_consistent(self, compiled_bv):
        assert compiled_bv.duration_us > 0
        assert compiled_bv.program.duration_us == pytest.approx(
            compiled_bv.metrics.duration_us, rel=1e-6
        )

    def test_summary_keys(self, compiled_bv):
        summary = compiled_bv.summary()
        assert summary["fidelity"] == pytest.approx(compiled_bv.total_fidelity)
        assert summary["num_2q_gates"] == 13

    @pytest.mark.parametrize("name", ["ghz_n23", "multiply_n13", "seca_n11"])
    def test_more_benchmarks_validate(self, arch, name):
        result = ZACCompiler(arch).compile(get_benchmark(name))
        validate_program(arch, result.program)
        assert result.metrics.num_excitations == 0
        assert result.total_fidelity > 0

    def test_too_many_qubits_rejected(self):
        from repro.arch import small_single_zone_architecture

        small = small_single_zone_architecture()
        with pytest.raises(ValueError):
            ZACCompiler(small).compile(ghz(500))

    def test_oversized_stage_is_split(self, arch):
        # 300 parallel CZ gates cannot fit the 140-site entanglement zone.
        circuit = ising_chain(600, steps=1)
        # Restrict to the first bond layer to keep the test fast.
        result = ZACCompiler(arch, ZACConfig(use_sa_initial_placement=False)).compile(
            ghz(150)
        )
        assert result.metrics.num_rydberg_stages >= 149
        del circuit

    def test_dual_zone_architecture_supported(self):
        arch = small_dual_zone_architecture()
        result = ZACCompiler(arch).compile(get_benchmark("bv_n14"))
        validate_program(arch, result.program)
        zones_used = {inst.zone_id for inst in result.program.rydberg_insts}
        assert zones_used <= {0, 1}


class TestReuseBehaviour:
    def test_reuse_reduces_transfers(self, arch):
        circuit = get_benchmark("ghz_n23")
        with_reuse = ZACCompiler(arch, ZACConfig.dyn_place_reuse()).compile(circuit)
        without = ZACCompiler(arch, ZACConfig.dyn_place()).compile(circuit)
        assert with_reuse.plan.num_reuses > 0
        assert with_reuse.metrics.num_transfers < without.metrics.num_transfers

    def test_same_pair_stages_keep_both_qubits(self, arch):
        """Two consecutive CZs on the same pair must not trigger any return trip."""
        from repro.circuits import QuantumCircuit

        circ = QuantumCircuit(2, name="double_cz")
        circ.cz(0, 1)
        circ.rz(0.3, 0)
        circ.cz(0, 1)
        result = ZACCompiler(arch, ZACConfig.dyn_place_reuse()).compile(circ)
        validate_program(arch, result.program)
        # 2 qubits enter once and leave once: 2 movements in, 2 movements out.
        assert result.metrics.num_movements == 4

    def test_vanilla_config_label(self):
        assert ZACConfig.vanilla().label == "Vanilla"
        assert ZACConfig.dyn_place().label == "dynPlace"
        assert ZACConfig.dyn_place_reuse().label == "dynPlace+reuse"
        assert ZACConfig.full().label == "SA+dynPlace+reuse"

    def test_ablation_ordering_on_ghz(self, arch):
        """Reuse should not lower fidelity relative to plain dynamic placement."""
        circuit = get_benchmark("ghz_n23")
        results = {
            label: ZACCompiler(arch, config).compile(circuit).total_fidelity
            for label, config in {
                "dynPlace": ZACConfig.dyn_place(),
                "dynPlace+reuse": ZACConfig.dyn_place_reuse(),
            }.items()
        }
        assert results["dynPlace+reuse"] >= results["dynPlace"] * 0.999


class TestMultiAOD:
    def test_multiple_aods_never_slower(self, arch):
        circuit = get_benchmark("ising_n42")
        one = ZACCompiler(with_num_aods(arch, 1)).compile(circuit)
        two = ZACCompiler(with_num_aods(arch, 2)).compile(circuit)
        assert two.duration_us <= one.duration_us + 1e-6
        assert two.total_fidelity >= one.total_fidelity * 0.999

    def test_aod_assignment_recorded(self, arch):
        circuit = get_benchmark("ising_n42")
        result = ZACCompiler(with_num_aods(arch, 3)).compile(circuit)
        used_aods = {job.aod_id for job in result.program.rearrange_jobs}
        assert used_aods <= {0, 1, 2}
        assert len(used_aods) >= 2
