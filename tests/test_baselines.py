"""Tests for the baseline compilers and the ideal bounds."""

import networkx as nx
import pytest

from repro.arch import reference_zoned_architecture
from repro.baselines import (
    AtomiqueCompiler,
    EnolaCompiler,
    IdealBound,
    NALACCompiler,
    SuperconductingCompiler,
    grid_coupling,
    heavy_hex_coupling,
    maximal_reuse_count,
    partition_qubits,
    route,
)
from repro.baselines.ideal import PERFECT_MOVEMENT, PERFECT_PLACEMENT, PERFECT_REUSE, idealized_result
from repro.circuits.library import get_benchmark, ghz, ising_chain
from repro.circuits.synthesis import decompose_to_cz, merge_single_qubit_runs
from repro.core import ZACCompiler


@pytest.fixture(scope="module")
def arch():
    return reference_zoned_architecture()


@pytest.fixture(scope="module")
def bv14():
    return get_benchmark("bv_n14")


class TestEnola:
    def test_monolithic_excites_idle_qubits(self, bv14):
        result = EnolaCompiler().compile(bv14)
        # Sequential circuit: 12 idle qubits per Rydberg stage, 13 stages.
        assert result.metrics.num_excitations == 12 * 13
        assert result.metrics.num_2q_gates == 13

    def test_every_gate_needs_movement(self):
        result = EnolaCompiler().compile(ghz(10))
        assert result.metrics.num_movements >= 9

    def test_architecture_grows_for_large_circuits(self):
        result = EnolaCompiler().compile(ising_chain(150, steps=1))
        assert result.metrics.num_2q_gates == 298
        assert result.total_fidelity >= 0.0

    def test_zac_beats_enola_on_sequential_circuits(self, arch, bv14):
        zac = ZACCompiler(arch).compile(bv14)
        enola = EnolaCompiler().compile(bv14)
        assert zac.total_fidelity > enola.total_fidelity


class TestAtomique:
    def test_partition_is_a_bipartition(self, bv14):
        slm, aod = partition_qubits(bv14)
        assert slm | aod == set(range(bv14.num_qubits))
        assert not slm & aod

    def test_partition_cuts_star_graph_well(self, bv14):
        slm, aod = partition_qubits(bv14)
        ancilla_side = slm if 13 in slm else aod
        # The BV ancilla interacts with everyone; a good cut isolates it.
        assert len(ancilla_side) <= 2

    def test_intra_array_gates_add_swap_overhead(self):
        circuit = ghz(8)
        result = AtomiqueCompiler().compile(circuit)
        assert result.metrics.num_2q_gates >= circuit.num_qubits - 1
        assert result.metrics.num_excitations > 0

    def test_no_atom_transfers(self, bv14):
        result = AtomiqueCompiler().compile(bv14)
        assert result.metrics.num_transfers == 0
        assert result.fidelity.atom_transfer == 1.0


class TestNALAC:
    def test_keeps_reused_qubits_but_pays_excitation(self, arch):
        circuit = get_benchmark("knn_n31")
        result = NALACCompiler(arch).compile(circuit)
        assert result.metrics.num_excitations > 0
        assert result.metrics.num_transfers > 0

    def test_zac_beats_nalac_on_geomean_subset(self, arch):
        from repro.experiments import geometric_mean

        names = ["bv_n30", "ghz_n40", "qft_n18", "knn_n31"]
        zac_f, nalac_f = [], []
        for name in names:
            circuit = get_benchmark(name)
            zac_f.append(ZACCompiler(arch).compile(circuit).total_fidelity)
            nalac_f.append(NALACCompiler(arch).compile(circuit).total_fidelity)
        assert geometric_mean(zac_f) > geometric_mean(nalac_f)

    def test_splits_wide_stages_across_pulses(self, arch):
        circuit = ising_chain(98, steps=1)
        result = NALACCompiler(arch).compile(circuit)
        # 49-gate stages exceed the 20-site row -> more Rydberg pulses than stages.
        assert result.metrics.num_rydberg_stages > 4


class TestSuperconducting:
    def test_coupling_graphs_connected(self):
        assert nx.is_connected(grid_coupling(11, 11))
        heavy = heavy_hex_coupling(7)
        assert nx.is_connected(heavy)
        assert heavy.number_of_nodes() >= 127

    def test_grid_size(self):
        assert grid_coupling(11, 11).number_of_nodes() == 121

    def test_routing_respects_coupling(self):
        coupling = grid_coupling(6, 6)
        circuit = merge_single_qubit_runs(decompose_to_cz(get_benchmark("multiply_n13")))
        routed = route(circuit, coupling)
        for gate in routed.circuit:
            if gate.num_qubits == 2:
                assert coupling.has_edge(*gate.qubits)

    def test_routing_executes_all_gates(self):
        coupling = grid_coupling(6, 6)
        circuit = merge_single_qubit_runs(decompose_to_cz(ghz(12)))
        routed = route(circuit, coupling)
        non_swap_2q = sum(
            1 for g in routed.circuit if g.num_qubits == 2 and g.name != "swap"
        )
        assert non_swap_2q == circuit.num_2q_gates

    def test_chain_maps_with_few_swaps(self):
        coupling = grid_coupling(6, 6)
        circuit = merge_single_qubit_runs(decompose_to_cz(ghz(12)))
        routed = route(circuit, coupling)
        assert routed.num_swaps <= 4

    def test_compiler_end_to_end(self, bv14):
        heron = SuperconductingCompiler.heron().compile(bv14)
        grid = SuperconductingCompiler.grid().compile(bv14)
        assert 0 < heron.total_fidelity < 1
        assert 0 < grid.total_fidelity < 1
        assert heron.fidelity.atom_transfer == 1.0

    def test_circuit_too_large_for_device(self):
        with pytest.raises(Exception):
            SuperconductingCompiler.grid().compile(ghz(200))


class TestIdealBounds:
    def test_maximal_reuse_count_chain(self):
        stages = [[(0, 1)], [(1, 2)], [(2, 3)]]
        assert maximal_reuse_count(stages) == 2

    def test_maximal_reuse_count_disjoint(self):
        stages = [[(0, 1)], [(2, 3)]]
        assert maximal_reuse_count(stages) == 0

    @pytest.mark.parametrize("name", ["bv_n14", "ghz_n23", "ising_n42"])
    def test_bounds_dominate_zac(self, arch, name):
        zac = ZACCompiler(arch).compile(get_benchmark(name))
        movement = idealized_result(zac, arch, PERFECT_MOVEMENT)
        placement = idealized_result(zac, arch, PERFECT_PLACEMENT)
        reuse = idealized_result(zac, arch, PERFECT_REUSE)
        assert movement.total_fidelity >= zac.total_fidelity * 0.999
        assert placement.total_fidelity >= movement.total_fidelity * 0.999
        assert reuse.total_fidelity >= placement.total_fidelity * 0.999

    def test_wrapper_compiles_directly(self, bv14):
        bound = IdealBound(PERFECT_REUSE)
        result = bound.compile(bv14)
        assert result.compiler_name == "Perfect Reuse"
        assert 0 < result.total_fidelity <= 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            IdealBound("perfect_everything")
