"""Backend conformance: ZAIR everywhere.

Every registered backend must (a) attach a ZAIR program to its result that
passes :func:`repro.zair.validate_program`, and (b) report numbers the
shared interpreter reproduces from that program -- bit-identical to the ZAC
scheduler's own accounting, and within 1e-9 relative of the legacy
hand-accumulated paths kept on the baselines as conformance oracles.
"""

from __future__ import annotations

import pytest

import repro.api as api
from repro.arch.presets import reference_zoned_architecture
from repro.baselines.ideal import (
    PERFECT_MOVEMENT,
    PERFECT_PLACEMENT,
    PERFECT_REUSE,
    IdealBound,
    idealized_result_legacy,
)
from repro.circuits.library import get_benchmark
from repro.core.compiler import ZACCompiler
from repro.core.config import ZACConfig
from repro.core.pipeline import FidelityPass, default_pipeline
from repro.zair import interpret_program, validate_program

CIRCUIT = "bv_n14"

COUNT_FIELDS = (
    "num_1q_gates",
    "num_2q_gates",
    "num_excitations",
    "num_transfers",
    "num_rydberg_stages",
    "num_movements",
)


def assert_equivalent(new, old, rel=1.0e-9):
    """New (interpreter-derived) result must match the legacy accounting."""
    for field in COUNT_FIELDS:
        assert getattr(new.metrics, field) == getattr(old.metrics, field), field
    assert new.metrics.num_qubits == old.metrics.num_qubits
    assert new.metrics.duration_us == pytest.approx(old.metrics.duration_us, rel=rel)
    assert new.fidelity.total == pytest.approx(old.fidelity.total, rel=rel)
    for name, value in old.fidelity.as_dict().items():
        assert new.fidelity.as_dict()[name] == pytest.approx(value, rel=rel), name
    for qubit, busy in old.metrics.qubit_busy_us.items():
        assert new.metrics.qubit_busy_us[qubit] == pytest.approx(busy, rel=rel)


@pytest.mark.parametrize("backend", api.available_backends())
class TestEveryBackendEmitsZAIR:
    def test_program_attached_and_valid(self, backend):
        result = api.compile(CIRCUIT, backend=backend, validate=False)
        assert result.program is not None
        validate_program(result.architecture, result.program)

    def test_registry_compile_path_validates(self, backend):
        # validate=True (the default) must replay the program without error.
        result = api.compile(CIRCUIT, backend=backend)
        assert result.program is not None

    def test_interpreter_reproduces_reported_numbers(self, backend):
        """result.metrics/fidelity ARE the interpreter's replay of result.program."""
        result = api.compile(CIRCUIT, backend=backend, validate=False)
        params = api.create_backend(backend).params
        replay = interpret_program(
            result.program, architecture=result.architecture, params=params
        )
        assert replay.metrics.duration_us == result.metrics.duration_us
        assert replay.fidelity.total == result.fidelity.total


class TestZacConformance:
    def test_interpreter_bit_identical_to_scheduler(self):
        """ZAC: interpreter replay == scheduler accounting, bit for bit."""
        arch = reference_zoned_architecture()
        circuit = get_benchmark(CIRCUIT)
        new = ZACCompiler(arch).compile(circuit)
        legacy_pipeline = default_pipeline(ZACConfig()).replace(
            "fidelity", FidelityPass(interpret=False)
        )
        old = ZACCompiler(arch, pipeline=legacy_pipeline).compile(circuit)
        for field in COUNT_FIELDS:
            assert getattr(new.metrics, field) == getattr(old.metrics, field), field
        assert new.metrics.duration_us == old.metrics.duration_us
        assert new.metrics.qubit_busy_us == old.metrics.qubit_busy_us
        assert new.metrics.total_move_distance_um == old.metrics.total_move_distance_um
        assert new.fidelity.as_dict() == old.fidelity.as_dict()

    def test_scheduler_metrics_kept_as_oracle(self):
        arch = reference_zoned_architecture()
        compiler = ZACCompiler(arch)
        captured = {}

        def capture(pass_obj, ctx):
            if pass_obj.name == "fidelity":
                captured.update(ctx.data)

        compiler.pipeline.add_post_hook(capture)
        compiler.compile(get_benchmark(CIRCUIT))
        assert "scheduler_metrics" in captured


@pytest.mark.parametrize("backend", ["enola", "atomique", "nalac", "sc"])
class TestBaselineConformance:
    def test_interpreter_matches_legacy(self, backend):
        compiler = api.create_backend(backend)
        circuit = get_benchmark(CIRCUIT)
        assert_equivalent(compiler.compile(circuit), compiler.compile_legacy(circuit))


@pytest.mark.parametrize("mode", [PERFECT_MOVEMENT, PERFECT_PLACEMENT, PERFECT_REUSE])
class TestIdealConformance:
    def test_interpreter_matches_legacy(self, mode):
        bound = IdealBound(mode)
        zac = ZACCompiler(bound.architecture, lower_jobs=False)
        zac_result = zac.compile(get_benchmark(CIRCUIT))
        new = bound.from_result(zac_result)
        old = idealized_result_legacy(zac_result, bound.architecture, mode)
        assert_equivalent(new, old)
        validate_program(bound.architecture, new.program)
