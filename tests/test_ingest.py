"""Tests for the QASM corpus + `repro ingest` pipeline (ROADMAP item 5b).

Covers the committed mini-corpus (circuits/corpus/*.qasm), per-file error
isolation through every pipeline stage (parse -> round-trip -> compile ->
validate), the `compile_many(return_exceptions=True)` resolution-isolation
regression, and the CLI exit-code contract.
"""

from __future__ import annotations

import json

import pytest

import repro.api as api
from repro.__main__ import main
from repro.circuits import qasm
from repro.circuits.corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_paths,
    load_corpus,
    sample_corpus_circuits,
)
from repro.experiments.ingest import STATUSES, IngestRecord, ingest_dir, ingest_paths
from repro.zair.instructions import QLoc

#: The deliberately malformed files committed alongside the corpus.
MALFORMED = {"malformed_unknown_gate.qasm", "malformed_no_qreg.qasm"}


class TestCorpusFiles:
    def test_committed_corpus_shape(self):
        paths = corpus_paths()
        assert len(paths) >= 20
        names = {p.name for p in paths}
        assert MALFORMED <= names

    def test_corpus_paths_accepts_single_file(self):
        path = DEFAULT_CORPUS_DIR / "ghz_n10.qasm"
        assert corpus_paths(path) == [path]

    def test_corpus_paths_missing_root(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            corpus_paths(tmp_path / "nowhere")

    def test_load_corpus_isolates_exactly_the_malformed_files(self):
        loaded, errors = load_corpus()
        assert len(loaded) == len(corpus_paths()) - len(MALFORMED)
        assert {path.name for path, _ in errors} == MALFORMED
        for _, message in errors:
            assert message  # a diagnostic, not a bare failure

    def test_loaded_circuits_are_named_and_non_trivial(self):
        for path, circuit in load_corpus()[0]:
            assert circuit.name == path.stem
            assert circuit.num_qubits >= 2
            assert len(circuit) >= 1

    def test_sampling_is_seeded(self):
        first = sample_corpus_circuits(6, seed=4)
        second = sample_corpus_circuits(6, seed=4)
        assert [p.name for p, _ in first] == [p.name for p, _ in second]
        assert [c.gates for _, c in first] == [c.gates for _, c in second]
        other = sample_corpus_circuits(6, seed=5)
        assert [p.name for p, _ in first] != [p.name for p, _ in other]


class TestCompileManyResolutionIsolation:
    """Regression: per-slot isolation must start at circuit *resolution*.

    A QASM parse failure inside a loader callable (or an unknown benchmark
    name) must fill that slot with the exception instead of aborting the
    whole batch.
    """

    def test_malformed_file_fills_its_slot_only(self):
        bad_path = DEFAULT_CORPUS_DIR / "malformed_unknown_gate.qasm"
        good = qasm.load(str(DEFAULT_CORPUS_DIR / "ghz_n10.qasm"), name="ghz_n10")
        outcomes = api.compile_many(
            [good, lambda: qasm.load(str(bad_path)), good],
            backend="sc",
            return_exceptions=True,
        )
        assert outcomes[0].duration_us > 0
        assert isinstance(outcomes[1], qasm.QASMError)
        assert outcomes[2].duration_us > 0

    def test_unknown_benchmark_name_fills_its_slot_only(self):
        outcomes = api.compile_many(
            ["bv_n14", "no_such_benchmark"], backend="sc", return_exceptions=True
        )
        assert outcomes[0].duration_us > 0
        assert isinstance(outcomes[1], Exception)

    def test_default_mode_still_raises_on_resolution_failure(self):
        with pytest.raises(Exception):
            api.compile_many(["no_such_benchmark"], backend="sc")


class TestIngestPipeline:
    def test_committed_corpus_end_to_end(self):
        report = ingest_dir(DEFAULT_CORPUS_DIR, backend="zac", profile="throughput")
        assert report.num_files == len(corpus_paths())
        assert report.num_errors == len(MALFORMED)
        by_status = report.by_status()
        assert by_status["parse-error"] == len(MALFORMED)
        assert by_status["ok"] == report.num_files - len(MALFORMED)
        rejected = {r.path.split("/")[-1] for r in report.records if not r.ok}
        assert rejected == MALFORMED
        for record in report.records:
            assert record.status in STATUSES
            if record.ok:
                # accepted files compiled AND validated (validate=True in-batch)
                assert record.duration_us > 0
                assert 0 < record.fidelity <= 1
                assert record.num_qubits >= 2
            else:
                assert record.status == "parse-error"
                assert record.error

    def test_report_is_machine_readable(self):
        report = ingest_paths(
            [DEFAULT_CORPUS_DIR / "ghz_n10.qasm"], backend="sc", profile="default"
        )
        data = json.loads(report.to_json())
        assert data["kind"] == "ingest-report"
        assert data["schema"] == 1
        assert data["backend"] == "sc"
        assert data["num_files"] == 1 and data["num_errors"] == 0
        assert data["records"][0]["status"] == "ok"
        assert report.ok
        assert any("1 files" in line or "ingested" in line for line in report.summary_lines())

    def test_mixed_directory_isolation(self, tmp_path):
        (tmp_path / "good.qasm").write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n'
        )
        (tmp_path / "bad.qasm").write_text(
            'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[2];\nfrobnicate q[0];\n'
        )
        report = ingest_dir(tmp_path, backend="enola")
        statuses = {r.path.split("/")[-1]: r.status for r in report.records}
        assert statuses == {"good.qasm": "ok", "bad.qasm": "parse-error"}

    def test_validation_error_carries_the_check_tag(self, tmp_path):
        class Broken:
            def __init__(self) -> None:
                self._inner = api.create_backend("enola")

            def compile(self, circuit):
                result = self._inner.compile(circuit)
                init = result.program.instructions[0]
                first, second = init.init_locs[0], init.init_locs[1]
                init.init_locs[1] = QLoc(second.qubit, first.slm_id, first.row, first.col)
                return result

        api.register_backend(
            "broken-ingest", lambda arch, options: Broken(), overwrite=True
        )
        try:
            report = ingest_paths(
                [DEFAULT_CORPUS_DIR / "ghz_n10.qasm"],
                backend="broken-ingest",
                profile="default",
            )
        finally:
            api.unregister_backend("broken-ingest")
        record = report.records[0]
        assert record.status == "validation-error"
        assert record.check == "trap-occupancy"
        assert not report.ok


class TestIngestRecord:
    def test_to_dict_omits_unset_fields(self):
        record = IngestRecord(path="x.qasm", status="parse-error", error="boom")
        data = record.to_dict()
        assert data == {"path": "x.qasm", "status": "parse-error", "error": "boom"}
        assert not record.ok


class TestIngestCLI:
    def test_default_corpus_exit_codes(self, capsys):
        # The committed corpus deliberately contains malformed files: the
        # default --max-errors 0 gate must fail, raising it must pass.
        assert main(["ingest", "--backend", "sc", "--max-errors", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 rejected" in out
        assert main(["ingest", "--backend", "sc"]) == 1

    def test_report_to_stdout_is_json(self, capsys):
        code = main(
            [
                "ingest",
                str(DEFAULT_CORPUS_DIR / "ghz_n10.qasm"),
                "--backend", "sc",
                "--report", "-",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "ingest-report"
        assert data["num_ok"] == 1

    def test_report_to_file(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "ingest",
                str(DEFAULT_CORPUS_DIR / "bv_n8.qasm"),
                str(DEFAULT_CORPUS_DIR / "malformed_no_qreg.qasm"),
                "--backend", "sc",
                "--max-errors", "1",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        data = json.loads(report_path.read_text())
        assert data["num_files"] == 2
        assert data["by_status"] == {"ok": 1, "parse-error": 1}
