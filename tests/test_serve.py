"""Tests for the ``repro serve`` subsystem (daemon, scheduler, disk cache).

Covers the serve contract end to end: the sharded disk compile cache
(round-trip through a *new* ``CompileService``, LRU byte-budget eviction,
corruption tolerance), the coalescing priority scheduler, the daemon's
request methods, the stdio transport via a spawned child daemon, the
kill-and-restart persistence guarantee (second daemon answers from disk
without recompiling, bit-identical fields), and cross-process prefix
shipping (a spawn-context worker resumes from a shipped snapshot).
"""

from __future__ import annotations

import asyncio
import dataclasses
import io
import json
import multiprocessing
import os
import threading

import pytest

from repro.circuits import qasm

from repro.api.parallel import (
    CompileService,
    _compile_task_with_prefix,
    export_prefix_snapshots,
    import_prefix_snapshots,
)
from repro.arch.presets import reference_zoned_architecture
from repro.circuits.random import generate
from repro.circuits.scheduling import clear_preprocess_cache
from repro.circuits.synthesis import get_resynthesis_prefix_cache
from repro.core.compiler import ZACCompiler
from repro.core.config import ZACConfig
from repro.core.incremental import clear_prefix_cache, get_prefix_cache
from repro.serve import (
    DaemonClient,
    DiskCompileCache,
    ServeDaemon,
    ServeScheduler,
    cache_key_digest,
)
from repro.serve.client import (
    ClientError,
    bundle_requests,
    corpus_requests,
    profile_request_options,
    run_requests,
)
from repro.serve.daemon import build_options

ARCH = reference_zoned_architecture()
SA_CONFIG = ZACConfig(sa_iterations=60)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_prefix_cache()
    clear_preprocess_cache()
    get_resynthesis_prefix_cache().clear()
    yield
    clear_prefix_cache()
    clear_preprocess_cache()
    get_resynthesis_prefix_cache().clear()


def _circuit(seed=0, n=5, depth=2):
    return generate("brickwork", seed=seed, num_qubits=n, depth=depth).circuit


def run_async(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# Disk compile cache
# ---------------------------------------------------------------------------


class TestDiskRoundTrip:
    def test_new_service_hits_disk_without_recompiling(self, tmp_path):
        """save -> new CompileService -> hit, validated flag preserved."""
        circuit = _circuit()
        first_service = CompileService()
        first_service.attach_disk_cache(DiskCompileCache(tmp_path))
        provenance: list = []
        first = first_service.compile_batch(
            [circuit],
            "zac",
            cache=True,
            keep_programs=False,
            provenance=provenance,
            config=SA_CONFIG,
        )[0]
        assert provenance == ["compiled"]

        # A brand-new service (fresh memory cache) over the same directory:
        # the request must be served from disk, not recompiled.
        second_service = CompileService()
        second_service.attach_disk_cache(DiskCompileCache(tmp_path))
        provenance = []
        second = second_service.compile_batch(
            [circuit],
            "zac",
            cache=True,
            keep_programs=False,
            provenance=provenance,
            config=SA_CONFIG,
        )[0]
        assert provenance == ["disk"]
        assert second.validated is first.validated is True
        assert second.to_dict() == first.to_dict()
        assert second_service.cache_stats()["disk"]["hits"] == 1

        # The disk hit was promoted into the memory cache: a third request
        # is a memory hit, not a second disk read.
        provenance = []
        second_service.compile_batch(
            [circuit],
            "zac",
            cache=True,
            keep_programs=False,
            provenance=provenance,
            config=SA_CONFIG,
        )
        assert provenance == ["memory"]
        assert second_service.cache_stats()["disk"]["hits"] == 1

    def test_unvalidated_disk_entry_recompiles_under_validate(self, tmp_path):
        """Disk entries carry no program, so validation cannot be added
        post-hoc -- a validate=True request must recompile."""
        circuit = _circuit()
        writer = CompileService()
        writer.attach_disk_cache(DiskCompileCache(tmp_path))
        writer.compile_batch(
            [circuit],
            "zac",
            validate=False,
            cache=True,
            keep_programs=False,
            config=SA_CONFIG,
        )

        reader = CompileService()
        reader.attach_disk_cache(DiskCompileCache(tmp_path))
        provenance: list = []
        result = reader.compile_batch(
            [circuit],
            "zac",
            validate=True,
            cache=True,
            keep_programs=False,
            provenance=provenance,
            config=SA_CONFIG,
        )[0]
        assert provenance == ["compiled"]
        assert result.validated

        # ... but a validate=False reader is happy with the slim entry.
        reader2 = CompileService()
        reader2.attach_disk_cache(DiskCompileCache(tmp_path))
        provenance = []
        reader2.compile_batch(
            [circuit],
            "zac",
            validate=False,
            cache=True,
            keep_programs=False,
            provenance=provenance,
            config=SA_CONFIG,
        )
        assert provenance == ["disk"]

    def test_full_artifact_requests_bypass_disk(self, tmp_path):
        """keep_programs=True can never be served by a slim disk entry."""
        circuit = _circuit()
        writer = CompileService()
        writer.attach_disk_cache(DiskCompileCache(tmp_path))
        writer.compile_batch(
            [circuit], "zac", cache=True, keep_programs=False, config=SA_CONFIG
        )

        reader = CompileService()
        reader.attach_disk_cache(DiskCompileCache(tmp_path))
        provenance: list = []
        result = reader.compile_batch(
            [circuit],
            "zac",
            cache=True,
            keep_programs=True,
            provenance=provenance,
            config=SA_CONFIG,
        )[0]
        assert provenance == ["compiled"]
        assert result.program is not None


def _slim_result():
    service = CompileService()
    return service.compile_batch(
        [_circuit()], "enola", cache=False, keep_programs=False
    )[0]


class TestDiskEviction:
    def test_lru_eviction_order_under_byte_budget(self, tmp_path):
        result = _slim_result()
        cache = DiskCompileCache(tmp_path, max_bytes=1)  # evict all but newest
        cache.put(("k", 1), result, backend="enola")
        size = cache.total_bytes
        assert size > 0

        # Budget for ~2 shards: the third put evicts the least recent.
        cache = DiskCompileCache(tmp_path, max_bytes=int(size * 2.5))
        cache.clear()
        cache.put(("k", "a"), result, backend="enola")
        cache.put(("k", "b"), result, backend="enola")
        assert cache.get(("k", "a")) is not None  # refresh a's recency
        cache.put(("k", "c"), result, backend="enola")  # evicts b, not a
        assert cache.stats()["evictions"] == 1
        assert cache.get(("k", "b")) is None
        assert cache.get(("k", "a")) is not None
        assert cache.get(("k", "c")) is not None
        assert cache.stats()["evictions_by_backend"] == {"enola": 1}

    def test_index_rebuilt_on_restart(self, tmp_path):
        result = _slim_result()
        writer = DiskCompileCache(tmp_path)
        writer.put(("k", 1), result, backend="enola")
        writer.put(("k", 2), result, backend="enola")

        reopened = DiskCompileCache(tmp_path)
        assert len(reopened) == 2
        assert reopened.total_bytes == writer.total_bytes
        assert reopened.get(("k", 1)) is not None

    def test_corrupted_shard_is_skipped_with_warning(self, tmp_path):
        result = _slim_result()
        cache = DiskCompileCache(tmp_path)
        cache.put(("k", 1), result, backend="enola")
        shard = cache.path_for(next(iter(cache.digests())))
        shard.write_bytes(shard.read_bytes()[: shard.stat().st_size // 2])

        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert cache.get(("k", 1)) is None
        assert len(cache) == 0
        assert not shard.exists()

        # The cache stays serviceable after dropping the bad shard.
        cache.put(("k", 1), result, backend="enola")
        assert cache.get(("k", 1)) is not None

    def test_garbage_shard_is_skipped_with_warning(self, tmp_path):
        result = _slim_result()
        cache = DiskCompileCache(tmp_path)
        cache.put(("k", 1), result, backend="enola")
        shard = cache.path_for(next(iter(cache.digests())))
        shard.write_text("this is not json\n")
        with pytest.warns(RuntimeWarning):
            assert cache.get(("k", 1)) is None


def _backdate(cache, key, seconds):
    """Age a shard's mtime so it looks idle for ``seconds``."""
    path = cache.path_for(cache_key_digest(key))
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


class TestDiskCacheTTL:
    def test_rejects_non_positive_ttl(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCompileCache(tmp_path, ttl_seconds=0)
        with pytest.raises(ValueError):
            DiskCompileCache(tmp_path, ttl_seconds=-5)

    def test_stale_shard_evicted_lazily_on_read(self, tmp_path):
        result = _slim_result()
        cache = DiskCompileCache(tmp_path, ttl_seconds=3600)
        cache.put(("k", 1), result, backend="enola")
        cache.put(("k", 2), result, backend="enola")
        assert cache.get(("k", 1)) is not None  # fresh: served normally

        _backdate(cache, ("k", 1), 7200)
        assert cache.get(("k", 1)) is None  # stale: evicted, counted, missed
        assert not cache.path_for(cache_key_digest(("k", 1))).exists()
        stats = cache.stats()
        assert stats["expired"] == 1
        assert stats["evictions"] == 0  # TTL eviction is not an LRU eviction
        assert stats["ttl_seconds"] == 3600
        assert cache.get(("k", 2)) is not None  # fresh entries unaffected

    def test_hit_refreshes_mtime_and_defers_expiry(self, tmp_path):
        result = _slim_result()
        cache = DiskCompileCache(tmp_path, ttl_seconds=3600)
        cache.put(("k", 1), result, backend="enola")
        _backdate(cache, ("k", 1), 3000)
        assert cache.get(("k", 1)) is not None  # hit bumps mtime...
        _backdate(cache, ("k", 1), 3000)
        assert cache.get(("k", 1)) is not None  # ...so 3000s later it's still fresh

    def test_startup_scan_sweeps_stale_shards(self, tmp_path):
        result = _slim_result()
        writer = DiskCompileCache(tmp_path)
        writer.put(("k", 1), result, backend="enola")
        writer.put(("k", 2), result, backend="enola")
        _backdate(writer, ("k", 1), 7200)

        reopened = DiskCompileCache(tmp_path, ttl_seconds=3600)
        assert len(reopened) == 1
        assert reopened.stats()["expired"] == 1
        assert not reopened.path_for(cache_key_digest(("k", 1))).exists()
        assert reopened.get(("k", 2)) is not None

    def test_no_ttl_never_expires(self, tmp_path):
        result = _slim_result()
        cache = DiskCompileCache(tmp_path)
        cache.put(("k", 1), result, backend="enola")
        _backdate(cache, ("k", 1), 10 * 365 * 24 * 3600)
        assert cache.get(("k", 1)) is not None
        assert cache.stats()["expired"] == 0
        assert cache.stats()["ttl_seconds"] is None


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


class _Blocker:
    """A thunk that blocks its worker until released (queue-shape control)."""

    def __init__(self):
        self.release = threading.Event()

    def __call__(self):
        self.release.wait(timeout=30)
        return "blocked"


async def _wait_until(predicate, timeout=5.0):
    for _ in range(int(timeout / 0.005)):
        if predicate():
            return
        await asyncio.sleep(0.005)
    raise AssertionError("condition not reached")


class TestServeScheduler:
    def test_identical_inflight_requests_coalesce(self):
        async def scenario():
            sched = ServeScheduler()
            sched.start()
            calls = []

            def thunk():
                calls.append(1)
                return "value"

            results = await asyncio.gather(
                sched.submit("same", thunk), sched.submit("same", thunk)
            )
            await sched.stop()
            return results, calls, sched.stats()

        results, calls, stats = run_async(scenario())
        assert len(calls) == 1  # one execution for two submissions
        assert [value for value, _ in results] == ["value", "value"]
        assert sorted(coalesced for _, coalesced in results) == [False, True]
        assert stats["submitted"] == 2
        assert stats["executed"] == 1
        assert stats["coalesced"] == 1

    def test_priority_order_with_batch_affinity(self):
        async def scenario():
            sched = ServeScheduler()
            sched.start()
            blocker = _Blocker()
            block_task = asyncio.create_task(sched.submit("block", blocker))
            await _wait_until(
                lambda: getattr(sched._inflight.get("block"), "started", False)
            )

            order = []
            batch_a = sched.next_batch()
            batch_b = sched.next_batch()
            tasks = [
                # Two batch-a shards with a batch-b item arriving between
                # them; one high-priority latecomer jumps the whole line.
                asyncio.create_task(
                    sched.submit("a1", lambda: order.append("a1"), batch=batch_a)
                ),
                asyncio.create_task(
                    sched.submit("b1", lambda: order.append("b1"), batch=batch_b)
                ),
                asyncio.create_task(
                    sched.submit("a2", lambda: order.append("a2"), batch=batch_a)
                ),
                asyncio.create_task(
                    sched.submit(
                        "hi", lambda: order.append("hi"), priority=5
                    )
                ),
            ]
            await _wait_until(lambda: len(sched._inflight) == 5)
            blocker.release.set()
            await asyncio.gather(block_task, *tasks)
            await sched.stop()
            return order

        # Priority first, then batch affinity (a2 rides with a1 even though
        # b1 arrived between them), then arrival order.
        assert run_async(scenario()) == ["hi", "a1", "a2", "b1"]

    def test_coalesced_duplicate_boosts_queued_priority(self):
        async def scenario():
            sched = ServeScheduler()
            sched.start()
            blocker = _Blocker()
            block_task = asyncio.create_task(sched.submit("block", blocker))
            await _wait_until(
                lambda: getattr(sched._inflight.get("block"), "started", False)
            )

            order = []
            low = asyncio.create_task(
                sched.submit("low", lambda: order.append("low"), priority=0)
            )
            mid = asyncio.create_task(
                sched.submit("mid", lambda: order.append("mid"), priority=3)
            )
            await _wait_until(lambda: len(sched._inflight) == 3)
            # A duplicate of "low" arriving at priority 9 boosts the queued
            # original ahead of "mid".
            dup = asyncio.create_task(
                sched.submit("low", lambda: order.append("dup"), priority=9)
            )
            await _wait_until(lambda: sched.coalesced == 1)
            blocker.release.set()
            await asyncio.gather(block_task, low, mid, dup)
            await sched.stop()
            return order

        assert run_async(scenario()) == ["low", "mid"]

    def test_thunk_exception_reaches_every_awaiter(self):
        async def scenario():
            sched = ServeScheduler()
            sched.start()

            def thunk():
                raise ValueError("boom")

            results = await asyncio.gather(
                sched.submit("bad", thunk),
                sched.submit("bad", thunk),
                return_exceptions=True,
            )
            await sched.stop()
            return results

        results = run_async(scenario())
        assert len(results) == 2
        assert all(isinstance(r, ValueError) for r in results)


# ---------------------------------------------------------------------------
# Daemon request handling (in-process)
# ---------------------------------------------------------------------------


BV_COMPILE = {
    "method": "compile",
    "params": {
        "circuit": {"benchmark": "bv_n14"},
        "options": {"config": "vanilla"},
    },
}


async def _with_daemon(fn, **kwargs):
    daemon = ServeDaemon(**kwargs)
    daemon.scheduler.start()
    try:
        return await fn(daemon)
    finally:
        await daemon.scheduler.stop()


class TestDaemonHandle:
    def test_compile_then_memory_hit(self):
        async def scenario(daemon):
            first = await daemon.handle({"id": 1, **BV_COMPILE})
            second = await daemon.handle({"id": 2, **BV_COMPILE})
            stats = await daemon.handle({"id": 3, "method": "stats"})
            return first, second, stats

        first, second, stats = run_async(_with_daemon(scenario))
        assert first["ok"] and first["result"]["served"] == "compiled"
        assert first["result"]["validated"] is True
        assert second["ok"] and second["result"]["served"] == "memory"
        assert second["result"]["summary"] == first["result"]["summary"]
        counters = stats["result"]["backends"]["zac"]
        assert counters == {"requests": 2, "hits": 1, "misses": 1, "coalesced": 0}

    def test_concurrent_identical_requests_coalesce(self):
        async def scenario(daemon):
            responses = await asyncio.gather(
                daemon.handle({"id": 1, **BV_COMPILE}),
                daemon.handle({"id": 2, **BV_COMPILE}),
            )
            return responses, daemon.service.cache.stats()

        responses, cache_stats = run_async(_with_daemon(scenario))
        served = sorted(r["result"]["served"] for r in responses)
        assert served == ["coalesced", "compiled"]
        assert cache_stats["misses"] == 1  # exactly one real compile

    def test_descriptor_and_qasm_circuit_specs(self):
        workload = generate("brickwork", seed=3, num_qubits=4, depth=2)

        async def scenario(daemon):
            return await daemon.handle(
                {
                    "id": 1,
                    "method": "compile",
                    "params": {
                        "circuit": {"descriptor": workload.descriptor.to_dict()},
                        "options": {"config": {"sa_iterations": 60}},
                    },
                }
            )

        response = run_async(_with_daemon(scenario))
        assert response["ok"]
        assert response["result"]["circuit"] == workload.circuit.name

    def test_sweep_is_one_batch_and_coalesces_duplicates(self):
        spec = {"benchmark": "bv_n14"}

        async def scenario(daemon):
            response = await daemon.handle(
                {
                    "id": 1,
                    "method": "sweep",
                    "params": {
                        "circuits": [spec, spec],
                        "options": {"config": "vanilla"},
                    },
                }
            )
            return response, daemon.service.cache.stats()

        response, cache_stats = run_async(_with_daemon(scenario))
        assert response["ok"]
        results = response["result"]["results"]
        assert len(results) == 2
        assert cache_stats["misses"] == 1  # the duplicate never recompiled
        assert {r["served"] for r in results} <= {"compiled", "coalesced", "memory"}

    def test_sweep_fanout_path(self):
        async def scenario(daemon):
            return await daemon.handle(
                {
                    "id": 1,
                    "method": "sweep",
                    "params": {
                        "circuits": [
                            {"benchmark": "bv_n14"},
                            {
                                "descriptor": {
                                    "generator": "brickwork",
                                    "seed": 1,
                                    "params": {"num_qubits": 4, "depth": 2},
                                }
                            },
                        ],
                        "options": {"config": "vanilla"},
                    },
                }
            )

        response = run_async(_with_daemon(scenario, workers=2))
        assert response["ok"]
        assert [r["served"] for r in response["result"]["results"]] == [
            "compiled",
            "compiled",
        ]

    def test_validate_method(self):
        async def scenario(daemon):
            return await daemon.handle(
                {
                    "id": 1,
                    "method": "validate",
                    "params": {
                        "circuit": {"benchmark": "bv_n14"},
                        "options": {"config": "vanilla"},
                    },
                }
            )

        response = run_async(_with_daemon(scenario))
        assert response["ok"]
        assert response["result"]["valid"] is True

    def test_request_errors_are_reported_not_fatal(self):
        async def scenario(daemon):
            return (
                await daemon.handle({"id": 1, "method": "frobnicate"}),
                await daemon.handle(
                    {"id": 2, "method": "compile", "params": {"circuit": {}}}
                ),
                await daemon.handle(
                    {
                        "id": 3,
                        "method": "compile",
                        "params": {
                            "circuit": {"benchmark": "bv_n14"},
                            "options": {"config": {"no_such_field": 1}},
                        },
                    }
                ),
                await daemon.handle({"id": 4, **BV_COMPILE}),
            )

        unknown, bad_circuit, bad_config, ok = run_async(_with_daemon(scenario))
        assert not unknown["ok"] and "unknown method" in unknown["error"]["message"]
        assert not bad_circuit["ok"]
        assert not bad_config["ok"]
        assert "no_such_field" in bad_config["error"]["message"]
        assert ok["ok"]  # the daemon survived all three bad requests

    def test_shutdown_method(self):
        async def scenario(daemon):
            response = await daemon.handle({"id": 1, "method": "shutdown"})
            return response, daemon._shutdown.is_set()

        response, stopped = run_async(_with_daemon(scenario))
        assert response["ok"] and response["result"] == {"stopping": True}
        assert stopped


class TestBuildOptions:
    def test_preset_and_field_override_forms(self):
        assert build_options("zac", {"config": "vanilla"})["config"] == (
            ZACConfig.vanilla()
        )
        built = build_options("zac", {"config": {"sa_iterations": 7}})
        assert built["config"].sa_iterations == 7

    def test_non_zac_backends_pass_options_through(self):
        assert build_options("enola", {"router": "greedy"}) == {"router": "greedy"}


# ---------------------------------------------------------------------------
# Stdio transport end to end (spawned child daemons)
# ---------------------------------------------------------------------------


class TestStdioEndToEnd:
    def test_pipelined_duplicates_coalesce_or_hit(self):
        with DaemonClient.spawn() as client:
            first = client.send(**_client_compile())
            second = client.send(**_client_compile())
            a = client.wait(first)
            b = client.wait(second)
            # Stats only after both responses: `stats` is answered
            # immediately (not queued), so asking earlier would race the
            # in-flight compiles' accounting.
            stats = client.request("stats")
        assert a["ok"] and b["ok"]
        served = sorted((a["result"]["served"], b["result"]["served"]))
        # Pipelined before any read: the duplicate either attached to the
        # in-flight compile or (if it raced past completion) hit memory.
        assert served in (["coalesced", "compiled"], ["compiled", "memory"])
        counters = stats["result"]["backends"]["zac"]
        assert counters["requests"] == 2
        assert counters["misses"] == 1

    def test_kill_and_restart_serves_from_disk(self, tmp_path):
        """The acceptance sequence: compile, power-cut the daemon, start a
        second one on the same cache dir -- it answers from disk without
        recompiling, with bit-identical result fields."""
        cache_dir = str(tmp_path / "cache")
        client = DaemonClient.spawn(cache_dir=cache_dir)
        try:
            cold = client.request(**_client_compile())
        finally:
            client.kill()  # no shutdown handshake: a power cut
        assert cold["ok"] and cold["result"]["served"] == "compiled"

        with DaemonClient.spawn(cache_dir=cache_dir) as client2:
            warm = client2.request(**_client_compile())
            stats = client2.request("stats")
        assert warm["ok"] and warm["result"]["served"] == "disk"
        assert stats["result"]["cache"]["disk"]["hits"] == 1
        for field in ("circuit", "backend", "compiler", "architecture", "validated"):
            assert warm["result"][field] == cold["result"][field]
        assert warm["result"]["summary"] == cold["result"]["summary"]


def _client_compile():
    return {
        "method": "compile",
        "params": {
            "circuit": {"benchmark": "bv_n14"},
            "options": {"config": "vanilla"},
        },
    }


# ---------------------------------------------------------------------------
# Replayed fuzz bundles and QASM corpora as daemon traffic
# ---------------------------------------------------------------------------


def _write_bundle(path, backend, circuit, profile="throughput"):
    bundle = {
        "kind": "fuzz-repro",
        "schema": 1,
        "check": "validation:trap-occupancy",
        "profile": profile,
        "backend": backend,
        "message": "synthetic bundle for traffic replay",
        "descriptor": {
            "generator": "brickwork",
            "seed": 0,
            "params": {"num_qubits": circuit.num_qubits, "depth": 2},
        },
        "circuit_qasm": qasm.dumps(circuit),
    }
    path.write_text(json.dumps(bundle))


class TestBundleTraffic:
    def test_profile_options_round_trip_as_json(self):
        options = profile_request_options("throughput", "zac")
        assert options["config"]["sa_iterations"] == 100
        json.dumps(options)  # must be wire-serializable
        assert profile_request_options("default", "zac") is None

    def test_bundle_requests_carry_circuit_and_profile_options(self, tmp_path):
        _write_bundle(tmp_path / "a.json", "zac", _circuit(seed=1, n=4))
        _write_bundle(tmp_path / "b.json", "nalac", _circuit(seed=2, n=5))
        # Skipped: not a bundle, and a workload-level check with no backend.
        (tmp_path / "c.json").write_text(json.dumps({"kind": "other"}))
        _write_bundle(tmp_path / "d.json", "workload", _circuit(seed=3, n=4))
        requests = bundle_requests(tmp_path)
        assert [r["params"]["backend"] for r in requests] == ["zac", "nalac"]
        for request in requests:
            assert request["method"] == "compile"
            assert "qreg" in request["params"]["circuit"]["qasm"]
        assert requests[0]["params"]["options"]["config"]["sa_iterations"] == 100

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(ClientError, match="no fuzz repro bundles"):
            bundle_requests(tmp_path)

    def test_corpus_requests_skip_malformed_files(self):
        requests = corpus_requests(backend="sc")
        assert len(requests) >= 20
        for request in requests:
            assert request["params"]["backend"] == "sc"
            assert "OPENQASM" in request["params"]["circuit"]["qasm"]

    def test_two_replayed_bundles_drive_a_stdio_daemon(self, tmp_path):
        """The satellite acceptance case: two recorded fuzz bundles become
        live traffic against a spawned stdio daemon and both compile."""
        _write_bundle(tmp_path / "fuzz_fail_000.json", "zac", _circuit(seed=4, n=4))
        _write_bundle(tmp_path / "fuzz_fail_001.json", "nalac", _circuit(seed=5, n=5))
        requests = bundle_requests(tmp_path)
        assert len(requests) == 2
        output = io.StringIO()
        code = run_requests(requests, output=output)
        assert code == 0
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert len(responses) == 3  # two compiles + the appended shutdown
        compiles = [r for r in responses if "result" in r and "served" in r.get("result", {})]
        assert len(compiles) == 2
        assert all(r["ok"] for r in responses)
        backends = {r["result"]["backend"] for r in compiles}
        assert backends == {"zac", "nalac"}


# ---------------------------------------------------------------------------
# Cross-process prefix shipping
# ---------------------------------------------------------------------------


class TestPrefixShipping:
    def test_spawn_worker_resumes_from_shipped_snapshot(self):
        """The airtight cross-process test: a spawn-context worker (no
        fork-inherited state) compiles a deeper ladder rung from a shipped
        prefix snapshot and reports the resume as a prefix hit."""
        inc_config = dataclasses.replace(
            SA_CONFIG, incremental=True, warm_start=True
        )
        compiler = ZACCompiler(ARCH, inc_config)
        shallow = _circuit(seed=0, n=5, depth=2)
        deep = _circuit(seed=0, n=5, depth=4)
        compiler.compile(shallow)
        snapshots = export_prefix_snapshots()
        assert snapshots["prefix"]["entries"]

        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            outcome, snaps_after, delta = pool.apply(
                _compile_task_with_prefix,
                ((snapshots, (compiler, deep, True, False, False)),),
            )
        assert not isinstance(outcome, Exception)
        assert delta["prefix"]["hits"] >= 1  # the worker resumed, not recompiled

        # Merging the worker's snapshot + stats makes the reuse visible in
        # this process's service-level cache_stats().
        hits_before = get_prefix_cache().hits
        entries_before = len(get_prefix_cache()._entries)
        import_prefix_snapshots(snaps_after, stats_delta=delta)
        assert get_prefix_cache().hits >= hits_before + 1
        assert len(get_prefix_cache()._entries) > entries_before

    def test_ship_prefix_batch_reports_reuse_in_parent_stats(self):
        """compile_batch(ship_prefix=True) over a depth ladder: the parent's
        cache_stats() shows the workers' prefix hits after the merge."""
        service = CompileService()
        inc_config = dataclasses.replace(
            SA_CONFIG, incremental=True, warm_start=True
        )
        # Warm the worker pool BEFORE the rung-1 compile so fork inheritance
        # cannot leak the prefix entry to the workers behind our back.
        service.compile_batch(
            [_circuit(seed=9, n=4, depth=1)] * 4, "enola", parallel=2
        )

        service.compile_batch(
            [_circuit(seed=0, n=5, depth=2)],
            "zac",
            parallel=0,
            config=inc_config,
        )
        hits_before = get_prefix_cache().hits

        rungs = [_circuit(seed=0, n=5, depth=d) for d in (3, 4, 5, 6)]
        results = service.compile_batch(
            rungs,
            "zac",
            parallel=2,
            ship_prefix=True,
            config=inc_config,
        )
        assert all(r.validated for r in results)
        assert service.cache_stats()["prefix"]["hits"] >= hits_before + 1
