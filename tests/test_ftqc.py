"""Tests for the FTQC package: [[8,3,2]] blocks, hIQP circuits, logical compilation,
and the seeded logical-scale workload generators (ftqc/workloads.py)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.api as api
from repro.circuits.random import GeneratorError, WorkloadDescriptor, generate
from repro.experiments.fuzz import replay_bundle, run_fuzz
from repro.ftqc import (
    BLOCK_COLS,
    BLOCK_ROWS,
    CodeBlock,
    LOGICAL_QUBITS_PER_BLOCK,
    LogicalBlockCompiler,
    PHYSICAL_QUBITS_PER_BLOCK,
    expand_physical_circuit,
    ftqc_generator_names,
    ftqc_model,
    hiqp_block_interaction_circuit,
    hiqp_circuit,
    hiqp_physical_circuit,
    in_block_gate_physical_ops,
    interaction_circuit,
    is_ftqc_generator,
    logical_summary,
    make_blocks,
    transversal_cnot_physical_ops,
)
from repro.ftqc.code832 import X_STABILIZER, Z_STABILIZERS, stabilizer_weight_parity_ok

GENERATOR_NAMES = ("ftqc_hiqp", "ftqc_transversal")


class TestCodeBlock:
    def test_code_parameters(self):
        assert PHYSICAL_QUBITS_PER_BLOCK == 8
        assert LOGICAL_QUBITS_PER_BLOCK == 3
        assert BLOCK_ROWS * BLOCK_COLS == 8

    def test_stabilizers_are_even_weight(self):
        assert stabilizer_weight_parity_ok()
        assert len(X_STABILIZER) == 8
        for stab in Z_STABILIZERS:
            assert len(stab) == 4

    def test_make_blocks_disjoint_registers(self):
        blocks = make_blocks(4)
        qubits = [q for b in blocks for q in b.physical_qubits]
        assert len(qubits) == len(set(qubits)) == 32
        assert blocks[2].logical_qubits == (6, 7, 8)

    def test_block_layout_is_2x4(self):
        block = make_blocks(1)[0]
        layout = block.physical_layout()
        rows = {r for r, _ in layout.values()}
        cols = {c for _, c in layout.values()}
        assert rows == {0, 1}
        assert cols == {0, 1, 2, 3}

    def test_wrong_block_size_rejected(self):
        with pytest.raises(ValueError):
            CodeBlock(block_id=0, physical_qubits=(0, 1, 2))

    def test_in_block_gate_is_transversal_tdg(self):
        block = make_blocks(1)[0]
        ops = in_block_gate_physical_ops(block)
        assert len(ops) == 8
        assert all(name == "tdg" for name, _ in ops)

    def test_transversal_cnot_pairs_corresponding_qubits(self):
        a, b = make_blocks(2)
        ops = transversal_cnot_physical_ops(a, b)
        assert len(ops) == 8
        for _, control, target in ops:
            assert target - control == 8


class TestHIQPCircuit:
    def test_paper_instance_counts(self):
        model = hiqp_circuit(128)
        assert model.num_logical_qubits == 384
        assert model.num_physical_qubits == 1024
        assert model.num_transversal_cnots == 448
        assert len(model.cnot_layers) == 7
        assert len(model.in_block_layers) == 8

    def test_stride_doubles(self):
        model = hiqp_circuit(8)
        layers = model.block_pairs()
        assert layers[0][0] == (0, 1)
        assert layers[1][0] == (0, 2)
        assert layers[2][0] == (0, 4)

    def test_each_cnot_layer_is_a_perfect_matching(self):
        model = hiqp_circuit(16)
        for layer in model.block_pairs():
            blocks = [b for pair in layer for b in pair]
            assert sorted(blocks) == list(range(16))

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            hiqp_circuit(12)

    def test_block_interaction_circuit(self):
        circuit = hiqp_block_interaction_circuit(8)
        assert circuit.num_qubits == 8
        assert circuit.num_2q_gates == 3 * 4

    def test_physical_expansion_small(self):
        circuit = hiqp_physical_circuit(4)
        assert circuit.num_qubits == 32
        ops = circuit.count_ops()
        assert ops["cx"] == 2 * 2 * 8  # 2 CNOT layers x 2 block pairs x 8 physical CNOTs
        assert ops["tdg"] == 3 * 4 * 8  # 3 in-block layers x 4 blocks x 8 qubits
        assert ops["h"] == 32


class TestLogicalCompilation:
    def test_small_instance(self):
        result = LogicalBlockCompiler().compile_hiqp(8)
        assert result.num_blocks == 8
        assert result.num_transversal_cnots == 3 * 4
        assert result.num_rydberg_stages >= 3
        assert result.duration_us > 0

    def test_paper_instance_stage_count(self):
        """128 blocks on the 3x5-site logical architecture need 35 Rydberg stages."""
        result = LogicalBlockCompiler().compile_hiqp(128)
        assert result.num_rydberg_stages == 35
        assert result.num_logical_qubits == 384
        assert result.num_physical_qubits == 1024
        summary = result.summary()
        assert summary["num_transversal_cnots"] == 448


# ---------------------------------------------------------------------------
# Seeded logical-scale workload generators (ftqc/workloads.py)
# ---------------------------------------------------------------------------


class TestWorkloadRegistry:
    def test_generators_are_registered(self):
        assert set(ftqc_generator_names()) == set(GENERATOR_NAMES)
        for name in GENERATOR_NAMES:
            assert is_ftqc_generator(name)
        assert not is_ftqc_generator("brickwork")

    def test_unknown_generator_rejected(self):
        with pytest.raises(GeneratorError):
            ftqc_model("brickwork", num_qubits=4, depth=2)

    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    def test_size_validation(self, name):
        with pytest.raises(GeneratorError):
            ftqc_model(name, num_qubits=1, depth=2)
        with pytest.raises(GeneratorError):
            ftqc_model(name, num_qubits=4, depth=0)

    def test_descriptor_round_trip(self):
        descriptor = WorkloadDescriptor(
            generator="ftqc_hiqp", seed=7, params={"num_qubits": 12, "depth": 3}
        )
        rebuilt = WorkloadDescriptor.from_dict(json.loads(json.dumps(descriptor.to_dict())))
        assert rebuilt == descriptor
        assert rebuilt.build().gates == descriptor.build().gates


class TestWorkloadProperties:
    """Hypothesis property tests over the seeded workload family."""

    @given(
        name=st.sampled_from(GENERATOR_NAMES),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_blocks=st.integers(min_value=2, max_value=48),
        depth=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_seeded_model_is_deterministic_and_well_formed(
        self, name, seed, num_blocks, depth
    ):
        first = ftqc_model(name, seed=seed, num_qubits=num_blocks, depth=depth)
        second = ftqc_model(name, seed=seed, num_qubits=num_blocks, depth=depth)
        assert first.layers == second.layers
        assert first.num_blocks == num_blocks
        assert first.num_transversal_cnots >= 1
        for layer in first.block_pairs():
            touched = [block for pair in layer for block in pair]
            # every CNOT layer is a matching over valid block indices
            assert len(touched) == len(set(touched))
            assert all(0 <= block < num_blocks for block in touched)
        summary = logical_summary(first)
        assert summary["num_logical_qubits"] == 3 * num_blocks
        assert summary["num_physical_qubits"] == 8 * num_blocks
        assert summary["num_transversal_cnots"] == first.num_transversal_cnots

    @given(
        name=st.sampled_from(GENERATOR_NAMES),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_blocks=st.integers(min_value=2, max_value=32),
        depth=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_generated_circuit_matches_model_lowering(
        self, name, seed, num_blocks, depth
    ):
        """generate() and ftqc_model() + interaction_circuit() agree gate for gate."""
        workload = generate(name, seed=seed, num_qubits=num_blocks, depth=depth)
        model = ftqc_model(name, seed=seed, num_qubits=num_blocks, depth=depth)
        assert workload.circuit.gates == interaction_circuit(model).gates
        assert workload.circuit.num_qubits == num_blocks
        assert workload.circuit.num_2q_gates == model.num_transversal_cnots
        assert workload.descriptor.build().gates == workload.circuit.gates

    @given(
        name=st.sampled_from(GENERATOR_NAMES),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_blocks=st.integers(min_value=2, max_value=24),
        depth=st.integers(min_value=1, max_value=4),
        extra=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_depth_prefix_property(self, name, seed, num_blocks, depth, extra):
        """For a fixed seed the depth-d circuit is a prefix of the deeper one."""
        shallow = generate(name, seed=seed, num_qubits=num_blocks, depth=depth).circuit
        deep = generate(
            name, seed=seed, num_qubits=num_blocks, depth=depth + extra
        ).circuit
        assert deep.gates[: len(shallow.gates)] == shallow.gates


class TestLoweringRoundTrip:
    """code832/hIQP lowering round trips: workloads.py vs the legacy paths."""

    @given(num_blocks=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=4, deadline=None)
    def test_canonical_hiqp_interaction_lowering_round_trips(self, num_blocks):
        model = hiqp_circuit(num_blocks)
        lowered = interaction_circuit(model)
        legacy = hiqp_block_interaction_circuit(num_blocks)
        assert lowered.gates == legacy.gates
        assert lowered.num_qubits == legacy.num_qubits

    @given(num_blocks=st.sampled_from([2, 4, 8]))
    @settings(max_examples=3, deadline=None)
    def test_canonical_hiqp_physical_expansion_round_trips(self, num_blocks):
        model = hiqp_circuit(num_blocks)
        expanded = expand_physical_circuit(model)
        legacy = hiqp_physical_circuit(num_blocks)
        assert expanded.gates == legacy.gates
        assert expanded.num_qubits == legacy.num_qubits == 8 * num_blocks

    @given(
        name=st.sampled_from(GENERATOR_NAMES),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_blocks=st.integers(min_value=2, max_value=12),
        depth=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_physical_expansion_counts(self, name, seed, num_blocks, depth):
        """Every block CNOT costs 8 physical CNOTs, every in-block gate 8 tdg."""
        model = ftqc_model(name, seed=seed, num_qubits=num_blocks, depth=depth)
        physical = expand_physical_circuit(model)
        ops = physical.count_ops()
        assert ops["h"] == 8 * num_blocks
        assert ops.get("cx", 0) == 8 * model.num_transversal_cnots
        in_block_gates = sum(len(layer) for layer in model.in_block_layers)
        assert ops.get("tdg", 0) == 8 * in_block_gates


class ExtraCNOT:
    """ZAC wrapper with an injected lowering bug: one duplicated interaction.

    The compiled program executes the logical circuit plus a duplicate of its
    final 2Q gate -- exactly the class of logical->physical gate-count drift
    the ftqc-correspondence invariant exists to catch.
    """

    name = "zac-extracnot"

    def __init__(self, arch) -> None:
        self._arch = arch

    def compile(self, circuit):
        doped = circuit.copy()
        last_2q = next(
            (gate for gate in reversed(circuit.gates) if len(gate.qubits) == 2), None
        )
        if last_2q is not None:
            doped.cz(*last_2q.qubits)
        return api.compile(doped, backend="zac", arch=self._arch, validate=False)


@pytest.fixture
def extracnot_backend():
    api.register_backend(
        "zac-extracnot", lambda arch, options: ExtraCNOT(arch), overwrite=True
    )
    try:
        yield "zac-extracnot"
    finally:
        api.unregister_backend("zac-extracnot")


class TestInjectedCorrespondenceViolation:
    def test_fuzz_catches_minimizes_and_replays(self, extracnot_backend, tmp_path):
        report = run_fuzz(
            budget=4,
            seed=0,
            profile="ftqc",
            backends=[extracnot_backend],
            out_dir=str(tmp_path),
            check_determinism=False,
            check_legacy=False,
            check_depth_monotonic=False,
        )
        assert not report.ok
        correspondence = [
            f for f in report.failures if f.check == "invariant:ftqc-correspondence"
        ]
        assert correspondence
        failure = correspondence[0]
        assert failure.backend == extracnot_backend
        assert "2Q gate count" in failure.message
        # Bisection shrank the logical reproducer to (near) a single CNOT.
        assert failure.minimized_num_gates < failure.original_num_gates
        assert failure.minimized_num_gates <= 2
        # The bundle replays against the still-broken backend.
        assert failure.bundle_path is not None
        bundle = json.loads(open(failure.bundle_path).read())
        assert bundle["kind"] == "fuzz-repro"
        assert bundle["profile"] == "ftqc"
        assert bundle["descriptor"]["generator"] in GENERATOR_NAMES
        reproduced, message = replay_bundle(failure.bundle_path)
        assert reproduced
        assert "correspondence still violated" in message

    def test_replay_reports_fixed_lowering_as_not_reproduced(
        self, extracnot_backend, tmp_path
    ):
        report = run_fuzz(
            budget=2,
            seed=0,
            profile="ftqc",
            backends=[extracnot_backend],
            out_dir=str(tmp_path),
            check_determinism=False,
            check_legacy=False,
            check_depth_monotonic=False,
        )
        failure = next(
            f for f in report.failures if f.check == "invariant:ftqc-correspondence"
        )
        # "Fix" the bug by pointing the bundle at the healthy backend.
        bundle = json.loads(open(failure.bundle_path).read())
        bundle["backend"] = "zac"
        with open(failure.bundle_path, "w") as handle:
            json.dump(bundle, handle)
        reproduced, message = replay_bundle(failure.bundle_path)
        assert not reproduced
        assert "holds again" in message
