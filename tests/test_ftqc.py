"""Tests for the FTQC package: [[8,3,2]] blocks, hIQP circuits, logical compilation."""

import pytest

from repro.ftqc import (
    BLOCK_COLS,
    BLOCK_ROWS,
    CodeBlock,
    LOGICAL_QUBITS_PER_BLOCK,
    LogicalBlockCompiler,
    PHYSICAL_QUBITS_PER_BLOCK,
    hiqp_block_interaction_circuit,
    hiqp_circuit,
    hiqp_physical_circuit,
    in_block_gate_physical_ops,
    make_blocks,
    transversal_cnot_physical_ops,
)
from repro.ftqc.code832 import X_STABILIZER, Z_STABILIZERS, stabilizer_weight_parity_ok


class TestCodeBlock:
    def test_code_parameters(self):
        assert PHYSICAL_QUBITS_PER_BLOCK == 8
        assert LOGICAL_QUBITS_PER_BLOCK == 3
        assert BLOCK_ROWS * BLOCK_COLS == 8

    def test_stabilizers_are_even_weight(self):
        assert stabilizer_weight_parity_ok()
        assert len(X_STABILIZER) == 8
        for stab in Z_STABILIZERS:
            assert len(stab) == 4

    def test_make_blocks_disjoint_registers(self):
        blocks = make_blocks(4)
        qubits = [q for b in blocks for q in b.physical_qubits]
        assert len(qubits) == len(set(qubits)) == 32
        assert blocks[2].logical_qubits == (6, 7, 8)

    def test_block_layout_is_2x4(self):
        block = make_blocks(1)[0]
        layout = block.physical_layout()
        rows = {r for r, _ in layout.values()}
        cols = {c for _, c in layout.values()}
        assert rows == {0, 1}
        assert cols == {0, 1, 2, 3}

    def test_wrong_block_size_rejected(self):
        with pytest.raises(ValueError):
            CodeBlock(block_id=0, physical_qubits=(0, 1, 2))

    def test_in_block_gate_is_transversal_tdg(self):
        block = make_blocks(1)[0]
        ops = in_block_gate_physical_ops(block)
        assert len(ops) == 8
        assert all(name == "tdg" for name, _ in ops)

    def test_transversal_cnot_pairs_corresponding_qubits(self):
        a, b = make_blocks(2)
        ops = transversal_cnot_physical_ops(a, b)
        assert len(ops) == 8
        for _, control, target in ops:
            assert target - control == 8


class TestHIQPCircuit:
    def test_paper_instance_counts(self):
        model = hiqp_circuit(128)
        assert model.num_logical_qubits == 384
        assert model.num_physical_qubits == 1024
        assert model.num_transversal_cnots == 448
        assert len(model.cnot_layers) == 7
        assert len(model.in_block_layers) == 8

    def test_stride_doubles(self):
        model = hiqp_circuit(8)
        layers = model.block_pairs()
        assert layers[0][0] == (0, 1)
        assert layers[1][0] == (0, 2)
        assert layers[2][0] == (0, 4)

    def test_each_cnot_layer_is_a_perfect_matching(self):
        model = hiqp_circuit(16)
        for layer in model.block_pairs():
            blocks = [b for pair in layer for b in pair]
            assert sorted(blocks) == list(range(16))

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            hiqp_circuit(12)

    def test_block_interaction_circuit(self):
        circuit = hiqp_block_interaction_circuit(8)
        assert circuit.num_qubits == 8
        assert circuit.num_2q_gates == 3 * 4

    def test_physical_expansion_small(self):
        circuit = hiqp_physical_circuit(4)
        assert circuit.num_qubits == 32
        ops = circuit.count_ops()
        assert ops["cx"] == 2 * 2 * 8  # 2 CNOT layers x 2 block pairs x 8 physical CNOTs
        assert ops["tdg"] == 3 * 4 * 8  # 3 in-block layers x 4 blocks x 8 qubits
        assert ops["h"] == 32


class TestLogicalCompilation:
    def test_small_instance(self):
        result = LogicalBlockCompiler().compile_hiqp(8)
        assert result.num_blocks == 8
        assert result.num_transversal_cnots == 3 * 4
        assert result.num_rydberg_stages >= 3
        assert result.duration_us > 0

    def test_paper_instance_stage_count(self):
        """128 blocks on the 3x5-site logical architecture need 35 Rydberg stages."""
        result = LogicalBlockCompiler().compile_hiqp(128)
        assert result.num_rydberg_stages == 35
        assert result.num_logical_qubits == 384
        assert result.num_physical_qubits == 1024
        summary = result.summary()
        assert summary["num_transversal_cnots"] == 448
