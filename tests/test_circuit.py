"""Unit tests for repro.circuits.circuit."""

import pytest

from repro.circuits.circuit import CircuitError, QuantumCircuit
from repro.circuits.gates import Gate, GateError


class TestConstruction:
    def test_rejects_zero_qubits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_append_validates_indices(self):
        circ = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circ.append(Gate("cz", (0, 5)))

    def test_add_unknown_gate(self):
        circ = QuantumCircuit(2)
        with pytest.raises(GateError):
            circ.add("frobnicate", 0)

    def test_named_helpers(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.cx(0, 1)
        circ.ccx(0, 1, 2)
        circ.rz(0.5, 2)
        assert len(circ) == 4
        assert circ.count_ops() == {"h": 1, "cx": 1, "ccx": 1, "rz": 1}

    def test_extend_and_iter(self):
        circ = QuantumCircuit(2)
        circ.extend([Gate("h", (0,)), Gate("cz", (0, 1))])
        assert [g.name for g in circ] == ["h", "cz"]


class TestQueries:
    def make(self) -> QuantumCircuit:
        circ = QuantumCircuit(4, name="probe")
        circ.h(0)
        circ.cx(0, 1)
        circ.cx(1, 2)
        circ.cx(0, 1)
        circ.h(3)
        return circ

    def test_counts(self):
        circ = self.make()
        assert circ.num_1q_gates == 2
        assert circ.num_2q_gates == 3

    def test_depth(self):
        circ = self.make()
        # h(0); cx(0,1); cx(1,2); cx(0,1) -> depth 4 on qubit 1's path.
        assert circ.depth() == 4
        assert circ.two_qubit_depth() == 3

    def test_depth_of_parallel_gates(self):
        circ = QuantumCircuit(4)
        circ.cz(0, 1)
        circ.cz(2, 3)
        assert circ.depth() == 1

    def test_used_qubits(self):
        circ = self.make()
        assert circ.used_qubits() == {0, 1, 2, 3}

    def test_interaction_graph_weights(self):
        circ = self.make()
        graph = circ.interaction_graph()
        assert graph[0][1]["weight"] == 2
        assert graph[1][2]["weight"] == 1
        assert not graph.has_edge(0, 3)

    def test_copy_is_independent(self):
        circ = self.make()
        clone = circ.copy("clone")
        clone.h(0)
        assert len(clone) == len(circ) + 1
        assert clone.name == "clone"
