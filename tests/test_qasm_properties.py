"""Property-based tests: QASM parse -> emit -> parse is an identity.

Circuits are drawn by ``hypothesis`` over the front end's full gate
vocabulary with arbitrary finite float parameters.  The writer emits
``repr()`` floats (the shortest decimal that round-trips the exact value),
so the property is *exact* structural equality, not approximate.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import qasm
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.random import generate, generator_names

#: (name, arity, number of parameters) for every gate the strategy may draw.
GATE_SPECS = [
    ("id", 1, 0), ("x", 1, 0), ("y", 1, 0), ("z", 1, 0), ("h", 1, 0),
    ("s", 1, 0), ("sdg", 1, 0), ("t", 1, 0), ("tdg", 1, 0),
    ("sx", 1, 0), ("sxdg", 1, 0),
    ("rx", 1, 1), ("ry", 1, 1), ("rz", 1, 1), ("p", 1, 1), ("u1", 1, 1),
    ("u2", 1, 2), ("u3", 1, 3), ("u", 1, 3),
    ("cx", 2, 0), ("cz", 2, 0), ("cy", 2, 0), ("ch", 2, 0), ("swap", 2, 0),
    ("iswap", 2, 0),
    ("cp", 2, 1), ("cu1", 2, 1), ("crz", 2, 1), ("crx", 2, 1), ("cry", 2, 1),
    ("rzz", 2, 1), ("rxx", 2, 1),
    ("ccx", 3, 0), ("ccz", 3, 0), ("cswap", 3, 0),
]

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


@st.composite
def circuits(draw) -> QuantumCircuit:
    num_qubits = draw(st.integers(min_value=2, max_value=8))
    num_gates = draw(st.integers(min_value=0, max_value=25))
    specs = [spec for spec in GATE_SPECS if spec[1] <= num_qubits]
    circuit = QuantumCircuit(num_qubits, name="hypothesis")
    for _ in range(num_gates):
        name, arity, num_params = draw(st.sampled_from(specs))
        qubits = tuple(draw(st.permutations(range(num_qubits)))[:arity])
        params = tuple(draw(finite_floats) for _ in range(num_params))
        circuit.append(Gate(name, qubits, params))
    return circuit


@given(circuits())
@settings(max_examples=150, deadline=None)
def test_parse_emit_parse_is_identity(circuit):
    text = qasm.dumps(circuit)
    parsed = qasm.loads(text)
    assert parsed.num_qubits == circuit.num_qubits
    assert parsed.gates == circuit.gates
    # And the emitted text is a fixed point: emitting the parse changes nothing.
    assert qasm.dumps(parsed) == text


@given(circuits())
@settings(max_examples=50, deadline=None)
def test_emitted_text_is_well_formed(circuit):
    text = qasm.dumps(circuit)
    assert text.startswith("OPENQASM 2.0;")
    assert f"qreg q[{circuit.num_qubits}];" in text
    # one statement per gate after the three header lines
    assert len(text.strip().splitlines()) == 3 + len(circuit)


@given(
    name=st.sampled_from(generator_names()),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_generated_workloads_roundtrip_through_qasm(name, seed):
    """Every fuzz-generator circuit survives the QASM round trip gate for gate."""
    circuit = generate(name, seed=seed, num_qubits=5, depth=3).circuit
    parsed = qasm.loads(qasm.dumps(circuit))
    assert parsed.gates == circuit.gates
