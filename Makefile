# Entry points for the tier-1 test suite and the perf-tracking benchmarks.

PYTEST ?= python -m pytest
PY_SRC ?= PYTHONPATH=src python

.PHONY: test lint smoke bench bench-full

## Tier-1: lint + CLI smoke check plus the full unit + benchmark suite
## (what CI gates on).
test: lint smoke
	$(PYTEST) -x -q

## Static checks (configured in pyproject.toml).  Skips with a notice when
## ruff is not installed (the pinned CI image ships it; minimal containers
## may not).
lint:
	@if command -v ruff > /dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "lint skipped: ruff not installed"; \
	fi

## Fast end-to-end check of the public API through the CLI: the registry
## lists its backends, one benchmark compiles to a serializable result, and
## two backends' ZAIR programs validate against the hardware invariants.
smoke:
	$(PY_SRC) -m repro backends
	$(PY_SRC) -m repro compile bv_n14 --backend zac --json > /dev/null
	$(PY_SRC) -m repro validate bv_n14 --backend zac > /dev/null
	$(PY_SRC) -m repro validate bv_n14 --backend enola > /dev/null
	@echo "smoke ok"

## Tier-1 tests plus the compile-speed regression benchmark (writes
## BENCH_compile_speed.json with the fast-vs-naive speedup numbers).
bench:
	$(PYTEST) -x -q tests benchmarks/test_bench_compile_speed.py

## Every paper benchmark on the full 17-circuit set (slow).
bench-full:
	$(PYTEST) -q benchmarks --paper-full
