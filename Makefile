# Entry points for the tier-1 test suite and the perf-tracking benchmarks.

PYTEST ?= python -m pytest
PY_SRC ?= PYTHONPATH=src python

# Small-budget differential fuzz run gating `make test` (see `make fuzz`).
FUZZ_BUDGET ?= 6
FUZZ_SEED ?= 0

# Coverage floor for the ZAIR layer (the correctness oracle every backend
# and the fuzz harness lean on).
COV_FLOOR ?= 80

.PHONY: test lint smoke fuzz cov bench bench-smoke bench-full

## Tier-1: lint + CLI smoke check + small-budget differential fuzz plus the
## full unit + benchmark suite (what CI gates on).
test: lint smoke fuzz
	$(PYTEST) -x -q

## Static checks (configured in pyproject.toml).  Skips with a notice when
## ruff is not installed (the pinned CI image ships it; minimal containers
## may not).
lint:
	@if command -v ruff > /dev/null 2>&1; then \
		ruff check .; \
	else \
		echo "lint skipped: ruff not installed"; \
	fi

## Fast end-to-end check of the public API through the CLI: the registry
## lists its backends, one benchmark compiles to a serializable result, and
## EVERY registered backend's ZAIR program validates against the hardware
## invariants.  The validation matrix is derived from the registry itself,
## so a newly registered backend cannot silently skip validation.
smoke:
	$(PY_SRC) -m repro backends
	$(PY_SRC) -m repro compile bv_n14 --backend zac --json > /dev/null
	@for backend in $$($(PY_SRC) -m repro backends | awk '{print $$1}'); do \
		echo "validate bv_n14 --backend $$backend"; \
		$(PY_SRC) -m repro validate bv_n14 --backend $$backend > /dev/null || exit 1; \
	done
	@echo "smoke ok"

## Small-budget cross-backend differential fuzz over generated workloads.
## Failures are minimized and dumped as replayable bundles under
## fuzz_failures/.  Raise FUZZ_BUDGET for a deeper sweep.
fuzz:
	$(PY_SRC) -m repro fuzz --budget $(FUZZ_BUDGET) --seed $(FUZZ_SEED) --backend all

## Unit tests under coverage with a floor on the ZAIR layer.  Skips with a
## notice when pytest-cov is not installed (ships with the `test` extra).
cov:
	@if python -c "import pytest_cov" > /dev/null 2>&1; then \
		$(PYTEST) -q tests --cov=repro.zair --cov-report=term \
			--cov-fail-under=$(COV_FLOOR); \
	else \
		echo "coverage skipped: pytest-cov not installed"; \
	fi

## Tier-1 tests plus the compile-speed, verify-speed, and fuzz-throughput
## regression benchmarks (write BENCH_*.json with the trajectory numbers).
bench:
	$(PYTEST) -x -q tests benchmarks/test_bench_compile_speed.py benchmarks/test_bench_verify_speed.py benchmarks/test_bench_fuzz_throughput.py

## Just the perf-tracking benchmarks (no unit tests) -- CI runs this as a
## non-gating step and uploads the regenerated BENCH_*.json as artifacts so
## the perf trajectory is visible per PR.
bench-smoke:
	$(PYTEST) -q benchmarks/test_bench_compile_speed.py benchmarks/test_bench_verify_speed.py benchmarks/test_bench_fuzz_throughput.py

## Every paper benchmark on the full 17-circuit set (slow).
bench-full:
	$(PYTEST) -q benchmarks --paper-full
