# Entry points for the tier-1 test suite and the perf-tracking benchmarks.

PYTEST ?= python -m pytest
PY_SRC ?= PYTHONPATH=src python

.PHONY: test smoke bench bench-full

## Tier-1: CLI smoke check plus the full unit + benchmark suite (what CI gates on).
test: smoke
	$(PYTEST) -x -q

## Fast end-to-end check of the public API through the CLI: the registry
## lists its backends and one benchmark compiles to a serializable result.
smoke:
	$(PY_SRC) -m repro backends
	$(PY_SRC) -m repro compile bv_n14 --backend zac --json > /dev/null
	@echo "smoke ok"

## Tier-1 tests plus the compile-speed regression benchmark (writes
## BENCH_compile_speed.json with the fast-vs-naive speedup numbers).
bench:
	$(PYTEST) -x -q tests benchmarks/test_bench_compile_speed.py

## Every paper benchmark on the full 17-circuit set (slow).
bench-full:
	$(PYTEST) -q benchmarks --paper-full
