# Entry points for the tier-1 test suite and the perf-tracking benchmarks.

PYTEST ?= python -m pytest

.PHONY: test bench bench-full

## Tier-1: the full unit + benchmark suite (what CI gates on).
test:
	$(PYTEST) -x -q

## Tier-1 tests plus the compile-speed regression benchmark (writes
## BENCH_compile_speed.json with the fast-vs-naive speedup numbers).
bench:
	$(PYTEST) -x -q tests benchmarks/test_bench_compile_speed.py

## Every paper benchmark on the full 17-circuit set (slow).
bench-full:
	$(PYTEST) -q benchmarks --paper-full
